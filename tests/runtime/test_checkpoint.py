"""Tests for training-state checkpointing, including the cross-topology
restore property (partitioned -> whole-graph and back)."""

import numpy as np
import pytest

from repro.models import build_mlp
from repro.runtime import Adam, Executor, PartitionedExecutor, SGD, init_parameters
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint


@pytest.fixture
def trained(tmp_path, rng):
    g = build_mlp((8, 16, 4))
    ex = Executor(g, seed=1)
    opt = Adam(lr=1e-2)
    batch = {"x": rng.standard_normal((4, 8)),
             "y": rng.standard_normal((4, 4))}
    for _ in range(3):
        loss, grads = ex.loss_and_grads(batch)
        opt.step(ex.params, grads)
    return g, ex, opt, batch, tmp_path / "ckpt.npz"


class TestRoundTrip:
    def test_params_restored_exactly(self, trained):
        g, ex, opt, batch, path = trained
        save_checkpoint(path, ex.params, opt, step=3)
        params, opt2, step = load_checkpoint(path)
        assert step == 3
        assert set(params) == set(ex.params)
        for k in params:
            assert np.array_equal(params[k], ex.params[k])

    def test_adam_state_restored(self, trained):
        g, ex, opt, batch, path = trained
        save_checkpoint(path, ex.params, opt)
        _, opt2, _ = load_checkpoint(path)
        assert isinstance(opt2, Adam)
        assert opt2.lr == opt.lr
        assert set(opt2._m) == set(opt._m)
        for k in opt._m:
            assert np.array_equal(opt2._m[k], opt._m[k])
            assert np.array_equal(opt2._v[k], opt._v[k])
        assert opt2._t == opt._t

    def test_training_continues_identically(self, trained, rng):
        """Resume-from-checkpoint is bit-identical to uninterrupted
        training -- the property real checkpointing must satisfy."""
        g, ex, opt, batch, path = trained
        save_checkpoint(path, ex.params, opt, step=3)

        # continue the original run for two steps
        for _ in range(2):
            loss_orig, grads = ex.loss_and_grads(batch)
            opt.step(ex.params, grads)

        # resume from checkpoint and do the same
        params, opt2, _ = load_checkpoint(path)
        ex2 = Executor(g, params=params)
        for _ in range(2):
            loss_resumed, grads = ex2.loss_and_grads(batch)
            opt2.step(ex2.params, grads)

        assert loss_orig == pytest.approx(loss_resumed, abs=0)
        for k in ex.params:
            assert np.array_equal(ex.params[k], ex2.params[k])

    def test_sgd_checkpoint(self, tmp_path, rng):
        g = build_mlp((4, 8, 2))
        ex = Executor(g, seed=0)
        opt = SGD(lr=0.1, momentum=0.9)
        batch = {"x": rng.standard_normal((2, 4)),
                 "y": rng.standard_normal((2, 2))}
        loss, grads = ex.loss_and_grads(batch)
        opt.step(ex.params, grads)
        path = tmp_path / "sgd.npz"
        save_checkpoint(path, ex.params, opt)
        _, opt2, _ = load_checkpoint(path)
        assert isinstance(opt2, SGD)
        assert set(opt2._velocity) == set(opt._velocity)

    def test_no_optimizer(self, tmp_path):
        g = build_mlp((4, 8, 2))
        params = init_parameters(g)
        path = tmp_path / "p.npz"
        save_checkpoint(path, params)
        restored, opt, step = load_checkpoint(path)
        assert opt is None and step == 0
        assert set(restored) == set(params)

    def test_version_guard(self, tmp_path):
        g = build_mlp((4, 8, 2))
        path = tmp_path / "v.npz"
        save_checkpoint(path, init_parameters(g))
        # corrupt the version
        import json

        with np.load(str(path)) as archive:
            arrays = {k: archive[k] for k in archive.files}
        meta = json.loads(bytes(arrays["__meta__"]).decode())
        meta["version"] = 99
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
        np.savez(str(path), **arrays)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)


class TestCrossTopology:
    def test_partitioned_checkpoint_restores_whole(self, tmp_path, rng):
        """A checkpoint from partitioned training resumes whole-graph
        training on the identical trajectory."""
        g = build_mlp((8, 16, 16, 4))
        params0 = init_parameters(g, seed=5)
        tasks = list(g.tasks)
        cut = len(tasks) // 2
        part = PartitionedExecutor(
            g, [tasks[:cut], tasks[cut:]],
            params={k: v.copy() for k, v in params0.items()},
            num_microbatches=2, checkpointing=True,
        )
        opt = Adam(lr=1e-2)
        batch = {"x": rng.standard_normal((4, 8)),
                 "y": rng.standard_normal((4, 4))}
        for _ in range(2):
            loss, grads = part.loss_and_grads(batch)
            opt.step(part.params, grads)
        path = tmp_path / "cross.npz"
        save_checkpoint(path, part.params, opt, step=2)

        params, opt2, _ = load_checkpoint(path)
        whole = Executor(g, params=params)
        loss_w, grads_w = whole.loss_and_grads(batch)
        loss_p, grads_p = part.loss_and_grads(batch)
        assert loss_w == pytest.approx(loss_p, abs=1e-12)
