"""Tests for the whole-graph executor: forward semantics, autograd over
real model graphs, and end-to-end training behaviour."""

import numpy as np
import pytest

from repro.models import (
    BertConfig,
    GPTConfig,
    ResNetConfig,
    build_bert,
    build_gpt,
    build_mlp,
    build_resnet,
)
from repro.runtime import SGD, Adam, Executor, init_parameters


def mlp_batch(rng, n=4, din=16, dout=8):
    return {"x": rng.standard_normal((n, din)),
            "y": rng.standard_normal((n, dout))}


class TestForward:
    def test_env_contains_all_values(self, mlp_graph, rng):
        ex = Executor(mlp_graph)
        env = ex.forward(mlp_batch(rng))
        for task in mlp_graph.tasks.values():
            assert task.outputs[0] in env

    def test_loss_scalar(self, mlp_graph, rng):
        ex = Executor(mlp_graph)
        assert isinstance(ex.loss(mlp_batch(rng)), float)

    def test_deterministic(self, mlp_graph, rng):
        ex = Executor(mlp_graph, seed=7)
        batch = mlp_batch(rng)
        assert ex.loss(batch) == ex.loss(batch)

    def test_seed_changes_params(self, mlp_graph, rng):
        batch = mlp_batch(rng)
        l1 = Executor(mlp_graph, seed=1).loss(batch)
        l2 = Executor(mlp_graph, seed=2).loss(batch)
        assert l1 != l2

    def test_missing_kernel_rejected(self, mlp_graph):
        mlp_graph.tasks["act0"].op_type = "layernorm"  # wrong arity binding
        mlp_graph.tasks["act0"].op_type = "relu"  # restore
        ex = Executor(mlp_graph)  # builds fine with known ops
        assert ex is not None


class TestBackward:
    def test_gradcheck_full_mlp(self, rng):
        g = build_mlp((6, 10, 4), activation="tanh")
        ex = Executor(g, seed=3)
        batch = {"x": rng.standard_normal((3, 6)),
                 "y": rng.standard_normal((3, 4))}
        _, grads = ex.loss_and_grads(batch)
        eps = 1e-6
        for pname in ("fc0.weight", "fc0.bias", "fc1.weight"):
            p = ex.params[pname]
            num = np.zeros_like(p)
            it = np.nditer(p, flags=["multi_index"])
            for _ in it:
                idx = it.multi_index
                orig = p[idx]
                p[idx] = orig + eps
                lp = ex.loss(batch)
                p[idx] = orig - eps
                lm = ex.loss(batch)
                p[idx] = orig
                num[idx] = (lp - lm) / (2 * eps)
            assert np.abs(num - grads[pname]).max() < 1e-7

    def test_all_params_receive_grads(self, tiny_bert, rng):
        ex = Executor(tiny_bert)
        batch = {
            "input_ids": rng.integers(0, 101, (2, 16)),
            "token_type_ids": rng.integers(0, 2, (2, 16)),
            "attention_mask": np.zeros((2, 1, 1, 16)),
            "mlm_labels": rng.integers(0, 101, (2, 16)),
            "nsp_labels": rng.integers(0, 2, (2,)),
        }
        _, grads = ex.loss_and_grads(batch)
        params = {v.name for v in tiny_bert.params()}
        assert set(grads) == params

    def test_tied_embedding_grad_has_two_paths(self, tiny_bert, rng):
        """The word embedding is used by the lookup AND the MLM decoder;
        its gradient must include the decoder path (dense, so nearly all
        rows non-zero even if only a few ids were looked up)."""
        ex = Executor(tiny_bert)
        batch = {
            "input_ids": np.zeros((1, 16), np.int64),  # only id 0 looked up
            "token_type_ids": np.zeros((1, 16), np.int64),
            "attention_mask": np.zeros((1, 1, 1, 16)),
            "mlm_labels": rng.integers(0, 101, (1, 16)),
            "nsp_labels": np.zeros((1,), np.int64),
        }
        _, grads = ex.loss_and_grads(batch)
        g = grads["embeddings.word"]
        nonzero_rows = (np.abs(g).sum(axis=1) > 0).sum()
        assert nonzero_rows > 10  # decoder path touches every vocab row

    def test_wrt_inputs(self, mlp_graph, rng):
        ex = Executor(mlp_graph)
        batch = mlp_batch(rng)
        env = ex.forward(batch)
        grads = ex.backward(env, wrt_inputs=["x"])
        assert "x" in grads
        assert grads["x"].shape == batch["x"].shape

    def test_resnet_backward_runs(self, tiny_resnet, rng):
        ex = Executor(tiny_resnet, dtype=np.float64)
        batch = {"images": rng.standard_normal((2, 3, 32, 32)),
                 "labels": rng.integers(0, 10, (2,))}
        loss, grads = ex.loss_and_grads(batch)
        assert np.isfinite(loss)
        assert all(np.isfinite(g).all() for g in grads.values())

    def test_gpt_backward_runs(self, rng):
        g = build_gpt(GPTConfig(hidden_size=32, num_layers=2, num_heads=4,
                                seq_len=8, vocab_size=50))
        ex = Executor(g)
        mask = np.triu(np.full((8, 8), -1e9), k=1)[None, None]
        batch = {
            "input_ids": rng.integers(0, 50, (2, 8)),
            "causal_mask": np.broadcast_to(mask, (2, 1, 8, 8)).copy(),
            "labels": rng.integers(0, 50, (2, 8)),
        }
        loss, grads = ex.loss_and_grads(batch)
        assert np.isfinite(loss) and len(grads) == len(g.params())


class TestTraining:
    def test_sgd_descends(self, rng):
        g = build_mlp((8, 16, 4))
        ex = Executor(g, seed=0)
        opt = SGD(lr=0.2, momentum=0.9)
        batch = {"x": rng.standard_normal((16, 8)),
                 "y": rng.standard_normal((16, 4))}
        losses = []
        for _ in range(60):
            loss, grads = ex.loss_and_grads(batch)
            opt.step(ex.params, grads)
            losses.append(loss)
        assert losses[-1] < 0.5 * losses[0]

    def test_adam_descends(self, rng):
        g = build_mlp((8, 16, 4))
        ex = Executor(g, seed=0)
        opt = Adam(lr=0.01)
        batch = {"x": rng.standard_normal((16, 8)),
                 "y": rng.standard_normal((16, 4))}
        losses = [0.0] * 0
        for _ in range(30):
            loss, grads = ex.loss_and_grads(batch)
            opt.step(ex.params, grads)
            losses.append(loss)
        assert losses[-1] < 0.5 * losses[0]

    def test_momentum_state(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.ones(4)}
        opt.step(params, {"w": np.ones(4)})
        assert opt.state_bytes() == 4 * 8  # float64 velocity
        opt2 = SGD(lr=0.1)
        opt2.step({"w": np.ones(4)}, {"w": np.ones(4)})
        assert opt2.state_bytes() == 0

    def test_adam_bias_correction_first_step(self):
        opt = Adam(lr=0.1)
        params = {"w": np.zeros(1)}
        opt.step(params, {"w": np.array([1.0])})
        # with bias correction the first step is ~ -lr
        assert params["w"][0] == pytest.approx(-0.1, rel=1e-6)

    def test_bert_training_step_reduces_loss(self, tiny_bert, rng):
        ex = Executor(tiny_bert)
        opt = Adam(lr=5e-3)
        batch = {
            "input_ids": rng.integers(0, 101, (4, 16)),
            "token_type_ids": rng.integers(0, 2, (4, 16)),
            "attention_mask": np.zeros((4, 1, 1, 16)),
            "mlm_labels": rng.integers(0, 101, (4, 16)),
            "nsp_labels": rng.integers(0, 2, (4,)),
        }
        first = None
        last = None
        for _ in range(8):
            loss, grads = ex.loss_and_grads(batch)
            opt.step(ex.params, grads)
            first = first if first is not None else loss
            last = loss
        assert last < first


class TestInitParameters:
    def test_covers_params_and_consts(self, tiny_bert):
        params = init_parameters(tiny_bert)
        expected = {
            v.name for v in tiny_bert.values.values()
            if v.kind.value in ("param", "const")
        }
        assert set(params) == expected

    def test_deterministic(self, mlp_graph):
        a = init_parameters(mlp_graph, seed=5)
        b = init_parameters(mlp_graph, seed=5)
        assert all(np.array_equal(a[k], b[k]) for k in a)


class TestTracing:
    def test_traced_run_matches_untraced(self, mlp_graph, rng):
        from repro.obs import Tracer

        batch = mlp_batch(rng)
        plain = Executor(mlp_graph, seed=3)
        tracer = Tracer()
        traced = Executor(mlp_graph, seed=3, tracer=tracer)
        assert traced.loss(batch) == plain.loss(batch)

        env = traced.forward(batch)
        traced.backward(env)
        names = {s.name for s in tracer.spans()}
        assert {"exec.forward", "exec.backward", "exec.task"} <= names
        tasks = [s for s in tracer.spans() if s.name == "exec.task"]
        fwd = [s for s in tasks if s.attrs["phase"] == "F"]
        bwd = [s for s in tasks if s.attrs["phase"] == "B"]
        # forward covers every task; backward only tasks on the grad path
        per_fwd_pass = len(mlp_graph.tasks)
        assert len(fwd) == 2 * per_fwd_pass  # loss() + forward()
        assert 0 < len(bwd) <= per_fwd_pass
        parents = {s.span_id: s for s in tracer.spans()}
        for s in tasks:
            assert parents[s.parent_id].name in (
                "exec.forward", "exec.backward"
            )

    def test_disabled_tracer_records_nothing(self, mlp_graph, rng):
        from repro.obs import Tracer

        tracer = Tracer(enabled=False)
        ex = Executor(mlp_graph, tracer=tracer)
        ex.loss_and_grads(mlp_batch(rng))
        assert ex.tracer is None
        assert len(tracer) == 0
