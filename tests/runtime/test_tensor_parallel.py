"""Tensor-parallel (Megatron) semantic equivalence tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.tensor_parallel import (
    column_parallel_linear,
    megatron_mlp_dense,
    megatron_mlp_dense_grads,
    megatron_mlp_parallel,
    row_parallel_linear,
    split_columns,
    split_rows,
)

RNG = np.random.default_rng(7)


class TestSplits:
    def test_column_split(self):
        w = RNG.standard_normal((8, 4))
        shards = split_columns(w, 4)
        assert len(shards) == 4
        assert all(s.shape == (2, 4) for s in shards)
        assert np.array_equal(np.concatenate(shards, axis=0), w)

    def test_row_split(self):
        w = RNG.standard_normal((8, 4))
        shards = split_rows(w, 2)
        assert all(s.shape == (8, 2) for s in shards)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            split_columns(RNG.standard_normal((9, 4)), 2)
        with pytest.raises(ValueError):
            split_rows(RNG.standard_normal((4, 9)), 2)


class TestColumnParallel:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_matches_dense(self, world):
        x = RNG.standard_normal((3, 6))
        w = RNG.standard_normal((8, 6))
        g = RNG.standard_normal((3, 8))
        result = column_parallel_linear(x, split_columns(w, world), g)
        assert np.allclose(result.output, x @ w.T)
        assert np.allclose(result.grad_input, g @ w)
        assert np.allclose(result.gathered_weight_grad(axis=0), g.T @ x)


class TestRowParallel:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_matches_dense(self, world):
        x = RNG.standard_normal((3, 8))
        w = RNG.standard_normal((6, 8))
        g = RNG.standard_normal((3, 6))
        x_shards = list(np.split(x, world, axis=-1))
        result = row_parallel_linear(x_shards, split_rows(w, world), g)
        assert np.allclose(result.output, x @ w.T)
        assert np.allclose(result.grad_input, g @ w)
        assert np.allclose(result.gathered_weight_grad(axis=1), g.T @ x)


class TestMegatronMLP:
    @pytest.mark.parametrize("world", [1, 2, 4, 8])
    def test_block_equivalence(self, world):
        """The full Megatron MLP block (one allreduce per direction) is
        numerically identical to the dense computation at any degree."""
        x = RNG.standard_normal((4, 16))
        a = RNG.standard_normal((32, 16))  # up-projection
        b = RNG.standard_normal((16, 32))  # down-projection
        g = RNG.standard_normal((4, 16))
        out_p, gx_p, ga_p, gb_p = megatron_mlp_parallel(x, a, b, world, g)
        out_d, gx_d, ga_d, gb_d = megatron_mlp_dense_grads(x, a, b, g)
        assert np.allclose(out_p, out_d)
        assert np.allclose(gx_p, gx_d)
        assert np.allclose(ga_p, ga_d)
        assert np.allclose(gb_p, gb_d)

    def test_dense_helper(self):
        x = RNG.standard_normal((2, 8))
        a = RNG.standard_normal((16, 8))
        b = RNG.standard_normal((8, 16))
        assert np.allclose(
            megatron_mlp_dense(x, a, b),
            megatron_mlp_dense_grads(x, a, b, np.zeros((2, 8)))[0],
        )

    def test_gelu_applied_per_shard_without_comm(self):
        """Megatron's key trick: the nonlinearity commutes with the column
        split, so nothing is communicated between the two linears."""
        x = RNG.standard_normal((2, 8))
        a = RNG.standard_normal((16, 8))
        from repro.runtime.tensor_parallel import _gelu

        dense_hidden = _gelu(x @ a.T)
        shards = split_columns(a, 4)
        sharded = np.concatenate([_gelu(x @ s.T) for s in shards], axis=-1)
        assert np.allclose(dense_hidden, sharded)


@settings(max_examples=25, deadline=None)
@given(
    world=st.sampled_from([1, 2, 4]),
    batch=st.integers(min_value=1, max_value=6),
    din=st.sampled_from([4, 8]),
    dff=st.sampled_from([8, 16]),
    seed=st.integers(min_value=0, max_value=999),
)
def test_mlp_equivalence_property(world, batch, din, dff, seed):
    """Property: equivalence holds for arbitrary shapes/degrees/seeds."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, din))
    a = rng.standard_normal((dff, din))
    b = rng.standard_normal((din, dff))
    g = rng.standard_normal((batch, din))
    par = megatron_mlp_parallel(x, a, b, world, g)
    den = megatron_mlp_dense_grads(x, a, b, g)
    for p, d in zip(par, den):
        assert np.allclose(p, d, atol=1e-10)
