"""Tests for the parameter-staleness simulator."""

import numpy as np
import pytest

from repro.models import build_mlp
from repro.runtime.optimizer import SGD
from repro.runtime.staleness import (
    staleness_sweep,
    train_sync,
    train_with_staleness,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(3)
    graph = build_mlp((8, 16, 4))
    batches = [
        {"x": rng.standard_normal((4, 8)), "y": rng.standard_normal((4, 4))}
        for _ in range(20)
    ]
    return graph, batches


class TestStaleness:
    def test_delay_zero_equals_sync(self, workload):
        graph, batches = workload
        a = train_sync(graph, batches, lambda: SGD(lr=0.1))
        b = train_with_staleness(graph, batches, lambda: SGD(lr=0.1), delay=0)
        assert a.losses == b.losses

    def test_deterministic(self, workload):
        graph, batches = workload
        a = train_with_staleness(graph, batches, lambda: SGD(lr=0.1), delay=2)
        b = train_with_staleness(graph, batches, lambda: SGD(lr=0.1), delay=2)
        assert a.losses == b.losses

    def test_stale_differs_from_sync(self, workload):
        graph, batches = workload
        sync = train_sync(graph, batches, lambda: SGD(lr=0.1))
        stale = train_with_staleness(
            graph, batches, lambda: SGD(lr=0.1), delay=2
        )
        assert sync.losses[0] == stale.losses[0]  # same init
        assert sync.losses[-1] != stale.losses[-1]

    def test_small_lr_converges_despite_staleness(self, workload):
        graph, batches = workload
        stale = train_with_staleness(
            graph, batches, lambda: SGD(lr=0.02), delay=4
        )
        assert not stale.diverged
        assert stale.final_loss < stale.losses[0]

    def test_weight_stashing_changes_dynamics(self, workload):
        graph, batches = workload
        with_stash = train_with_staleness(
            graph, batches, lambda: SGD(lr=0.2, momentum=0.9), delay=2,
            weight_stashing=True,
        )
        without = train_with_staleness(
            graph, batches, lambda: SGD(lr=0.2, momentum=0.9), delay=2,
            weight_stashing=False,
        )
        assert with_stash.losses != without.losses

    def test_negative_delay_rejected(self, workload):
        graph, batches = workload
        with pytest.raises(ValueError):
            train_with_staleness(graph, batches, lambda: SGD(), delay=-1)

    def test_sweep_shapes(self, workload):
        graph, batches = workload
        results = staleness_sweep(
            graph, batches, lambda: SGD(lr=0.1), delays=(0, 1, 3)
        )
        assert [r.delay for r in results] == [0, 1, 3]
        assert all(len(r.losses) <= len(batches) for r in results)

    def test_divergence_detected(self, workload):
        graph, batches = workload
        wild = train_with_staleness(
            graph, batches, lambda: SGD(lr=50.0, momentum=0.99), delay=4
        )
        # either diverged-flagged or exploded in value
        assert wild.diverged or wild.final_loss > 1e3
