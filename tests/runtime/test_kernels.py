"""Gradient checks for every runtime kernel against numerical
differentiation (the ground truth for the whole autograd engine)."""

import numpy as np
import pytest

from repro.runtime import tensor as kernels

RNG = np.random.default_rng(42)
EPS = 1e-6
TOL = 1e-6


def numerical_grad(fwd, args, attrs, arg_idx, out_grad):
    """Central-difference gradient of sum(out * out_grad) w.r.t. one arg."""
    x = args[arg_idx]
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        plus = float((fwd(*args, attrs) * out_grad).sum())
        flat[i] = orig - EPS
        minus = float((fwd(*args, attrs) * out_grad).sum())
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * EPS)
    return grad


def check_op(op, args, attrs=None, skip_inputs=()):
    attrs = attrs or {}
    fwd = kernels.forward_kernel(op)
    vjp = kernels.vjp_kernel(op)
    out = fwd(*args, attrs)
    out_grad = RNG.standard_normal(out.shape)
    analytic = vjp(out_grad, args, out, attrs)
    for i, g in enumerate(analytic):
        if i in skip_inputs:
            assert g is None or g is not None  # integer inputs may be None
            continue
        assert g is not None, f"{op}: missing grad for input {i}"
        num = numerical_grad(fwd, args, attrs, i, out_grad)
        err = np.abs(g - num).max()
        assert err < TOL, f"{op}: grad {i} error {err}"


def randn(*shape):
    return RNG.standard_normal(shape)


class TestLinearAlgebraGrads:
    def test_matmul_2d(self):
        check_op("matmul", [randn(3, 4), randn(4, 5)])

    def test_matmul_batched(self):
        check_op("matmul", [randn(2, 3, 4, 5), randn(2, 3, 5, 4)])

    def test_matmul_broadcast(self):
        check_op("matmul", [randn(2, 2, 3, 4), randn(1, 1, 4, 3)])

    def test_matmul_3d_by_2d(self):
        check_op("matmul", [randn(2, 3, 4), randn(4, 5)])

    def test_linear(self):
        check_op("linear", [randn(2, 6), randn(4, 6), randn(4)])

    def test_linear_3d(self):
        check_op("linear", [randn(2, 3, 6), randn(4, 6), randn(4)])


class TestElementwiseGrads:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_binary(self, op):
        a, b = randn(3, 4), randn(3, 4) + 3.0  # keep div away from 0
        check_op(op, [a, b])

    @pytest.mark.parametrize("op", ["add", "mul"])
    def test_binary_broadcast(self, op):
        check_op(op, [randn(2, 3, 4), randn(4)])

    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid", "gelu", "neg",
                                    "identity", "softmax"])
    def test_unary(self, op):
        x = randn(3, 5) + 0.1  # avoid relu kink at exactly 0
        check_op(op, [x])

    def test_scale(self):
        check_op("scale", [randn(3, 4)], {"factor": 0.25})

    def test_dropout_inference_is_identity(self):
        x = randn(4, 4)
        out = kernels.forward_kernel("dropout")(x, {})
        assert np.array_equal(out, x)

    def test_dropout_train_mask_consistent(self):
        x = randn(64, 64)
        attrs = {"p": 0.5, "_train_seed": 7}
        out = kernels.forward_kernel("dropout")(x, attrs)
        g = kernels.vjp_kernel("dropout")(np.ones_like(x), [x], out, attrs)[0]
        # the VJP regenerates the same mask: zeros align
        assert np.array_equal(out == 0, g == 0)
        kept = out != 0
        assert np.allclose(out[kept], x[kept] * 2.0)


class TestNormGrads:
    def test_layernorm(self):
        check_op("layernorm", [randn(2, 3, 8), randn(8), randn(8)])

    def test_batchnorm2d(self):
        check_op("batchnorm2d", [randn(2, 3, 4, 4), randn(3), randn(3)])


class TestShapeGrads:
    def test_transpose(self):
        check_op("transpose", [randn(2, 3, 4)], {"perm": (2, 0, 1)})

    def test_reshape(self):
        check_op("reshape", [randn(2, 3, 4)], {"shape": (2, 12), "_batched": False})

    def test_reshape_batched_rebase(self):
        # canonical (1, 6) target with real batch 3
        x = randn(3, 2, 3)
        out = kernels.forward_kernel("reshape")(x, {"shape": (1, 6), "_batched": True})
        assert out.shape == (3, 6)

    def test_flatten(self):
        check_op("flatten", [randn(2, 3, 4)])

    def test_concat(self):
        check_op("concat", [randn(2, 3), randn(2, 5)], {"axis": 1})

    def test_slice_rows(self):
        check_op("slice_rows", [randn(2, 6, 3)], {"start": 1, "stop": 3})


class TestEmbeddingLossGrads:
    def test_embedding(self):
        ids = RNG.integers(0, 10, (2, 5))
        w = randn(10, 4)
        check_op("embedding", [ids, w], skip_inputs=(0,))

    def test_embedding_repeated_ids_accumulate(self):
        ids = np.array([[1, 1, 1]])
        w = randn(5, 2)
        out = kernels.forward_kernel("embedding")(ids, w, {})
        g = kernels.vjp_kernel("embedding")(
            np.ones_like(out), [ids, w], out, {}
        )[1]
        assert np.allclose(g[1], 3.0)

    def test_cross_entropy(self):
        logits = randn(4, 7)
        targets = RNG.integers(0, 7, (4,))
        check_op("cross_entropy", [logits, targets], skip_inputs=(1,))

    def test_cross_entropy_3d(self):
        logits = randn(2, 3, 7)
        targets = RNG.integers(0, 7, (2, 3))
        check_op("cross_entropy", [logits, targets], skip_inputs=(1,))

    def test_mse(self):
        check_op("mse_loss", [randn(3, 4), randn(3, 4)])

    def test_reduce_mean(self):
        check_op("reduce_mean", [randn(3, 4)])


class TestConvGrads:
    def test_conv2d(self):
        check_op("conv2d", [randn(2, 3, 6, 6), randn(4, 3, 3, 3)],
                 {"stride": 1, "padding": 1})

    def test_conv2d_stride2(self):
        check_op("conv2d", [randn(1, 2, 8, 8), randn(3, 2, 3, 3)],
                 {"stride": 2, "padding": 1})

    def test_maxpool(self):
        # avoid ties in max by spreading values
        x = np.arange(2 * 2 * 6 * 6, dtype=float).reshape(2, 2, 6, 6)
        x += RNG.standard_normal(x.shape) * 0.01
        check_op("maxpool2d", [x], {"kernel": 2, "stride": 2})

    def test_maxpool_padded(self):
        x = randn(1, 2, 5, 5)
        out = kernels.forward_kernel("maxpool2d")(
            x, {"kernel": 3, "stride": 2, "padding": 1}
        )
        assert out.shape == (1, 2, 3, 3)
        assert np.isfinite(out).all()

    def test_global_avgpool(self):
        check_op("global_avgpool", [randn(2, 3, 4, 4)])


def test_has_kernel_covers_registry():
    """Every registered IR op must have an executable kernel."""
    from repro.graph.ops import registry

    missing = [name for name in registry.names() if not kernels.has_kernel(name)]
    assert not missing, f"ops without kernels: {missing}"
