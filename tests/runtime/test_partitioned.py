"""The key correctness property of the whole system: partitioned
execution (microbatching + checkpointing + gradient accumulation +
cloned constants) is numerically equivalent to whole-graph execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import BertConfig, ResNetConfig, build_bert, build_mlp, build_resnet
from repro.runtime import (
    Adam,
    DataParallelTrainer,
    Executor,
    PartitionedExecutor,
    init_parameters,
)
from repro.runtime.data_parallel import allreduce_mean, scatter_batch
from repro.runtime.partitioned import split_microbatches


def bert_batch(rng, cfg, n=4):
    s = cfg.seq_len
    return {
        "input_ids": rng.integers(0, cfg.vocab_size, (n, s)),
        "token_type_ids": rng.integers(0, cfg.type_vocab_size, (n, s)),
        "attention_mask": np.zeros((n, 1, 1, s)),
        "mlm_labels": rng.integers(0, cfg.vocab_size, (n, s)),
        "nsp_labels": rng.integers(0, 2, (n,)),
    }


def assert_grads_match(a, b, tol=1e-10):
    assert set(a) == set(b)
    for k in a:
        err = np.abs(a[k] - b[k]).max()
        assert err < tol, f"{k}: {err}"


class TestSplitMicrobatches:
    def test_even_split(self, rng):
        batch = {"x": rng.standard_normal((8, 3))}
        micro = split_microbatches(batch, 4)
        assert len(micro) == 4
        assert all(m["x"].shape == (2, 3) for m in micro)
        assert np.array_equal(
            np.concatenate([m["x"] for m in micro]), batch["x"]
        )

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ValueError, match="not divisible"):
            split_microbatches({"x": rng.standard_normal((5, 3))}, 2)


class TestEquivalenceMLP:
    @pytest.mark.parametrize("mb,ckpt", [(1, False), (2, True), (4, True), (4, False)])
    def test_mlp(self, rng, mb, ckpt):
        g = build_mlp((8, 16, 16, 16, 4))
        params = init_parameters(g, seed=1)
        whole = Executor(g, params={k: v.copy() for k, v in params.items()})
        tasks = list(g.tasks)
        thirds = len(tasks) // 3
        part = PartitionedExecutor(
            g, [tasks[:thirds], tasks[thirds:2 * thirds], tasks[2 * thirds:]],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=mb, checkpointing=ckpt,
        )
        batch = {"x": rng.standard_normal((8, 8)),
                 "y": rng.standard_normal((8, 4))}
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = part.loss_and_grads(batch)
        assert lw == pytest.approx(lp, abs=1e-12)
        assert_grads_match(gw, gp)

    def test_coverage_enforced(self, rng):
        g = build_mlp((8, 16, 4))
        tasks = list(g.tasks)
        with pytest.raises(ValueError, match="do not cover"):
            PartitionedExecutor(g, [tasks[:2]])


class TestEquivalenceBert:
    def test_bert_two_stages_with_tied_weights(self, rng, tiny_bert_config):
        """The tied embedding crosses the stage boundary: its gradient
        must sum the contributions of BOTH stages."""
        cfg = tiny_bert_config
        g = build_bert(cfg)
        params = init_parameters(g, seed=2)
        whole = Executor(g, params={k: v.copy() for k, v in params.items()})
        tasks = list(g.tasks)
        cut = len(tasks) // 2
        part = PartitionedExecutor(
            g, [tasks[:cut], tasks[cut:]],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=2, checkpointing=True,
        )
        batch = bert_batch(rng, cfg)
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = part.loss_and_grads(batch)
        assert lw == pytest.approx(lp, abs=1e-12)
        assert_grads_match(gw, gp)

    def test_bert_cloned_constant_in_both_stages(self, rng, tiny_bert_config):
        """Explicitly place the decoder-weight transpose in BOTH stages
        (RaNNC's cloning) and verify equivalence still holds."""
        cfg = tiny_bert_config
        g = build_bert(cfg)
        params = init_parameters(g, seed=3)
        tasks = list(g.tasks)
        cut = len(tasks) // 2
        stage0 = tasks[:cut] + ["mlm.decoder_weight_t"]
        stage1 = tasks[cut:]
        assert "mlm.decoder_weight_t" in stage1  # clone in both
        whole = Executor(g, params={k: v.copy() for k, v in params.items()})
        part = PartitionedExecutor(
            g, [stage0, stage1],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=2, checkpointing=True,
        )
        batch = bert_batch(rng, cfg)
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = part.loss_and_grads(batch)
        assert lw == pytest.approx(lp, abs=1e-12)
        assert_grads_match(gw, gp)

    def test_training_trajectories_identical(self, rng, tiny_bert_config):
        cfg = tiny_bert_config
        g = build_bert(cfg)
        params = init_parameters(g, seed=4)
        whole = Executor(g, params={k: v.copy() for k, v in params.items()})
        tasks = list(g.tasks)
        cut = 2 * len(tasks) // 3
        part = PartitionedExecutor(
            g, [tasks[:cut], tasks[cut:]],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=2, checkpointing=True,
        )
        opt_w, opt_p = Adam(1e-3), Adam(1e-3)
        for _step in range(3):
            batch = bert_batch(rng, cfg)
            lw, gw = whole.loss_and_grads(batch)
            opt_w.step(whole.params, gw)
            lp, gp = part.loss_and_grads(batch)
            opt_p.step(part.params, gp)
            assert lw == pytest.approx(lp, abs=1e-9)


class TestEquivalenceResNet:
    def test_resnet_three_stages(self, rng):
        g = build_resnet(
            ResNetConfig(depth=50, width_factor=1, image_size=32, num_classes=7)
        )
        params = init_parameters(g, seed=5)
        whole = Executor(g, params={k: v.copy() for k, v in params.items()})
        tasks = list(g.tasks)
        a, b = len(tasks) // 3, 2 * len(tasks) // 3
        part = PartitionedExecutor(
            g, [tasks[:a], tasks[a:b], tasks[b:]],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=2, checkpointing=True,
        )
        batch = {"images": rng.standard_normal((4, 3, 32, 32)),
                 "labels": rng.integers(0, 7, (4,))}
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = part.loss_and_grads(batch)
        # batchnorm over microbatches differs from full-batch statistics:
        # losses agree only at MB=1... except this model normalizes over
        # (N,H,W); with per-microbatch stats the result is NOT identical.
        # We therefore compare against a microbatched whole-graph run.
        part1 = PartitionedExecutor(
            g, [tasks[:a], tasks[a:b], tasks[b:]],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=1, checkpointing=True,
        )
        l1, g1 = part1.loss_and_grads(batch)
        assert lw == pytest.approx(l1, abs=1e-12)
        assert_grads_match(gw, g1)


class TestDataParallel:
    def test_scatter_and_allreduce(self, rng):
        batch = {"x": rng.standard_normal((8, 2))}
        shards = scatter_batch(batch, 4)
        assert all(s["x"].shape == (2, 2) for s in shards)
        grads = allreduce_mean([
            {"w": np.full(3, 1.0)}, {"w": np.full(3, 3.0)},
        ])
        assert np.allclose(grads["w"], 2.0)

    def test_dp_equals_large_batch(self, rng):
        """DP with gradient averaging == single-process large batch
        (losses use per-shard means of equal-size shards)."""
        g = build_mlp((8, 16, 4))
        params = init_parameters(g, seed=6)
        single = Executor(g, params={k: v.copy() for k, v in params.items()})
        trainer = DataParallelTrainer(
            g, world_size=4, optimizer=Adam(1e-3),
            params={k: v.copy() for k, v in params.items()},
        )
        batch = {"x": rng.standard_normal((16, 8)),
                 "y": rng.standard_normal((16, 4))}
        loss_s, grads_s = single.loss_and_grads(batch)
        loss_p, grads_p = trainer.step(batch)
        assert loss_s == pytest.approx(loss_p, abs=1e-12)
        assert_grads_match(grads_s, grads_p)

    def test_world_size_one(self, rng):
        g = build_mlp((4, 8, 2))
        trainer = DataParallelTrainer(g, 1, Adam())
        loss, grads = trainer.step(
            {"x": rng.standard_normal((2, 4)), "y": rng.standard_normal((2, 2))}
        )
        assert np.isfinite(loss)

    def test_hybrid_dp_of_partitioned(self, rng, tiny_bert_config):
        """Hybrid: data-parallel shards each executed by a partitioned
        executor; averaged grads equal the whole-graph large batch."""
        cfg = tiny_bert_config
        g = build_bert(cfg)
        params = init_parameters(g, seed=7)
        tasks = list(g.tasks)
        cut = len(tasks) // 2
        whole = Executor(g, params={k: v.copy() for k, v in params.items()})
        batch = bert_batch(rng, cfg, n=8)
        lw, gw = whole.loss_and_grads(batch)

        shards = scatter_batch(batch, 2)
        grad_lists, losses = [], []
        for shard in shards:
            pe = PartitionedExecutor(
                g, [tasks[:cut], tasks[cut:]],
                params={k: v.copy() for k, v in params.items()},
                num_microbatches=2, checkpointing=True,
            )
            loss, grads = pe.loss_and_grads(shard)
            losses.append(loss)
            grad_lists.append(grads)
        avg = allreduce_mean(grad_lists)
        assert np.mean(losses) == pytest.approx(lw, abs=1e-12)
        assert_grads_match(gw, avg)


@settings(max_examples=8, deadline=None)
@given(
    mb=st.sampled_from([1, 2, 4]),
    cut_frac=st.floats(min_value=0.2, max_value=0.8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_equivalence_property(mb, cut_frac, seed):
    """Property: equivalence holds for any cut position / microbatching."""
    rng = np.random.default_rng(seed)
    g = build_mlp((8, 12, 12, 4))
    params = init_parameters(g, seed=seed)
    tasks = list(g.tasks)
    cut = max(1, min(len(tasks) - 1, int(len(tasks) * cut_frac)))
    whole = Executor(g, params={k: v.copy() for k, v in params.items()})
    part = PartitionedExecutor(
        g, [tasks[:cut], tasks[cut:]],
        params={k: v.copy() for k, v in params.items()},
        num_microbatches=mb, checkpointing=True,
    )
    batch = {"x": rng.standard_normal((4, 8)), "y": rng.standard_normal((4, 4))}
    lw, gw = whole.loss_and_grads(batch)
    lp, gp = part.loss_and_grads(batch)
    assert abs(lw - lp) < 1e-10
    assert_grads_match(gw, gp)
