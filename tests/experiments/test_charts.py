"""Tests for the ASCII chart rendering."""

import pytest

from repro.experiments.charts import bar_chart, series_chart
from repro.experiments.runner import SweepRow


@pytest.fixture
def rows():
    return [
        SweepRow("m1", "rannc", 0.3, True, 100.0),
        SweepRow("m1", "gpipe", 0.3, True, 50.0),
        SweepRow("m1", "dp", 0.3, False),
        SweepRow("m2", "rannc", 1.0, True, 10.0),
        SweepRow("m2", "gpipe", 1.0, True, 9.0),
        SweepRow("m2", "dp", 1.0, False),
    ]


class TestBarChart:
    def test_contains_everything(self, rows):
        text = bar_chart(rows, "Fig. X")
        assert "Fig. X" in text
        assert "m1" in text and "m2" in text
        assert "OOM" in text
        assert "100.0" in text

    def test_bars_proportional(self, rows):
        text = bar_chart(rows, width=40)
        bar_lengths = [l.count("#") for l in text.splitlines() if "|" in l]
        assert max(bar_lengths) == 40  # the best bar fills the width
        # gpipe m1 (50.0) gets half the best bar
        gpipe_m1 = next(
            l for l in text.splitlines() if l.strip().startswith("gpipe")
        )
        assert gpipe_m1.count("#") == 20

    def test_every_feasible_bar_nonempty(self, rows):
        text = bar_chart(rows, width=30)
        for line in text.splitlines():
            if "|" in line and "OOM" not in line:
                assert "#" in line

    def test_framework_filter(self, rows):
        text = bar_chart(rows, frameworks=["rannc"])
        assert "gpipe" not in text


class TestSeriesChart:
    def test_basic(self):
        text = series_chart([0.75, 0.5, 0.25], ["MB=1", "MB=2", "MB=4"],
                            "bubble")
        assert "bubble" in text and "MB=4" in text
        assert text.splitlines()[1].count("#") > text.splitlines()[3].count("#")

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_chart([1.0], ["a", "b"])

    def test_zero_values(self):
        text = series_chart([0.0, 0.0], ["a", "b"])
        assert "a" in text
