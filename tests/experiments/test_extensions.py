"""Unit tests for the extension experiment harnesses (reduced configs;
the full sweeps live in benchmarks/)."""

import pytest

from repro.experiments.gpt_extension import run_gpt_extension
from repro.experiments.sensitivity import (
    format_sensitivity,
    run_bandwidth_sensitivity,
    run_memory_sensitivity,
)
from repro.experiments.staleness_demo import format_staleness, run_staleness_demo


class TestGPTExtension:
    def test_small_family(self):
        rows = run_gpt_extension(
            family=[("tiny", 128, 2, 4)], batch_size=32, seq_len=64,
        )
        assert {r.framework for r in rows} == {"data_parallel", "rannc"}
        rannc = [r for r in rows if r.framework == "rannc"][0]
        assert rannc.feasible and rannc.throughput > 0


class TestSensitivity:
    def test_memory_sweep_small(self):
        rows = run_memory_sensitivity(
            memory_gib=(16, 64), hidden_size=512, num_layers=12,
            batch_size=64,
        )
        assert len(rows) == 2
        assert all(r.feasible for r in rows)
        text = format_sensitivity(rows, "sweep")
        assert "sweep" in text and "GiB" in text

    def test_infeasible_rendered(self):
        rows = run_memory_sensitivity(
            memory_gib=(0.05,), hidden_size=1024, num_layers=24,
            batch_size=256,
        )
        assert not rows[0].feasible
        assert "INFEASIBLE" in format_sensitivity(rows)

    def test_bandwidth_sweep_small(self):
        rows = run_bandwidth_sensitivity(
            bandwidths_gbps=(25,), hidden_size=512, num_layers=12,
            batch_size=64,
        )
        assert rows[0].feasible


class TestStalenessDemo:
    def test_small_run(self):
        rows = run_staleness_demo(
            learning_rates=(0.1,), delays=(0, 2), steps=10,
        )
        assert len(rows) == 1
        tails = rows[0].tail_by_delay()
        assert set(tails) == {0, 2}
        assert "delay=0" in format_staleness(rows)

    def test_sync_never_worse(self):
        # the full default horizon: the monotone-degradation law needs
        # enough steps for staleness effects to accumulate
        rows = run_staleness_demo(
            learning_rates=(0.3,), delays=(0, 4), steps=40,
        )
        tails = rows[0].tail_by_delay()
        assert tails[0] <= tails[4] + 1e-9
