"""Integration tests for the experiment harnesses (scaled-down grids;
the full paper-scale sweeps live in benchmarks/)."""

import math

import numpy as np
import pytest

from repro.experiments import (
    format_rows,
    run_coarsening_ablation,
    run_fig1,
    run_fig4,
    run_fig5,
    run_loss_validation,
    run_table1,
)
from repro.experiments.coarsening_ablation import SummedAtomicContext, format_ablation
from repro.experiments.fig4_bert import headline_claims
from repro.experiments.runner import SweepRow
from repro.experiments.table1_features import format_table1
from repro.hardware import Precision, paper_cluster


class TestRunner:
    def test_format_rows(self):
        rows = [
            SweepRow("m1", "a", 0.3, True, 10.0),
            SweepRow("m1", "b", 0.3, False),
            SweepRow("m2", "a", 1.0, True, 5.0),
        ]
        text = format_rows(rows, "title")
        assert "title" in text
        assert "OOM" in text
        assert "10.0" in text
        assert text.count("\n") >= 4

    def test_cell(self):
        assert SweepRow("m", "f", 1.0, True, 3.14159).cell == "3.1"
        assert SweepRow("m", "f", 1.0, False).cell == "OOM"


class TestFig1:
    def test_defaults(self):
        r = run_fig1()
        assert r.num_stages == 4 and r.num_microbatches == 8
        assert "F0" in r.rendered and "B7" in r.rendered


class TestTable1:
    def test_format(self):
        text = format_table1(run_table1())
        assert "RaNNC" in text and "Megatron-LM" in text
        assert text.count("\n") == 14  # header + rule + 13 rows


class TestFig4Small:
    @pytest.fixture(scope="class")
    def rows(self):
        # one small and one medium model keep the test fast
        return run_fig4(grid=[(1024, 24), (1536, 96)])

    def test_all_frameworks_present(self, rows):
        frameworks = {r.framework for r in rows}
        assert frameworks == {
            "data_parallel", "megatron_lm", "gpipe_hybrid",
            "pipedream_2bw", "rannc",
        }

    def test_rannc_trains_all(self, rows):
        assert all(r.feasible for r in rows if r.framework == "rannc")

    def test_dp_dies_on_medium(self, rows):
        dp = {r.workload: r for r in rows if r.framework == "data_parallel"}
        assert dp["h1024/L24"].feasible
        assert not dp["h1536/L96"].feasible

    def test_rannc_beats_gpipe_on_small(self, rows):
        by = {(r.framework, r.workload): r for r in rows}
        assert (
            by[("rannc", "h1024/L24")].throughput
            > by[("gpipe_hybrid", "h1024/L24")].throughput
        )

    def test_detail_recorded(self, rows):
        rannc = [r for r in rows if r.framework == "rannc"][0]
        assert "stages" in rannc.detail

    def test_headline_claims_structure(self, rows):
        claims = headline_claims(rows)
        assert claims["rannc_trains_all"]

    def test_amp_excludes_gpipe(self):
        rows = run_fig4(grid=[(1024, 24)], precision=Precision.AMP)
        gp = [r for r in rows if r.framework == "gpipe_hybrid"][0]
        assert not gp.feasible
        assert gp.detail["reason"] == "no AMP support"


class TestFig5Small:
    def test_single_node_only(self):
        rows = run_fig5(depths=(50,), width_factor=2, include_multi_node=False)
        frameworks = {r.framework for r in rows}
        assert frameworks == {"data_parallel", "gpipe_model", "rannc"}
        rannc = [r for r in rows if r.framework == "rannc"][0]
        gp = [r for r in rows if r.framework == "gpipe_model"][0]
        assert rannc.feasible and gp.feasible
        assert rannc.throughput > gp.throughput


class TestCoarseningAblation:
    def test_small_instance(self):
        rows = run_coarsening_ablation(layer_counts=(24,))
        row = rows[0]
        assert row.ablated_finished
        assert row.ablated_throughput < row.full_throughput
        assert not math.isnan(row.slowdown_pct)
        assert "slowdown" in format_ablation(rows) or "%" in format_ablation(rows)

    def test_dnf_marker(self):
        rows = run_coarsening_ablation(layer_counts=(96,), state_budget=1000)
        assert not rows[0].ablated_finished
        assert rows[0].projected_states > 1000
        assert "DNF" in format_ablation(rows)

    def test_summed_estimates_overestimate(self, tiny_bert, cluster):
        """Property: the summed-atomic estimate dominates the true merged
        profile in both time and memory."""
        from repro.partitioner.atomic import atomic_partition
        from repro.partitioner.blocks import Block
        from repro.partitioner.stage_dp import DPContext
        from repro.profiler import GraphProfiler

        profiler = GraphProfiler(tiny_bert, cluster)
        comps = atomic_partition(tiny_bert)
        blocks = [
            Block(index=i, atomic_indices=(i,), tasks=c.tasks)
            for i, c in enumerate(comps)
        ]
        summed = SummedAtomicContext(tiny_bert, blocks, profiler, 32)
        true = DPContext(tiny_bert, blocks, profiler, 32)
        for lo, hi in [(0, len(blocks)), (0, len(blocks) // 2),
                       (len(blocks) // 3, len(blocks) // 2)]:
            a = summed.stage_profile(lo, hi, 1, 1, 1, True)
            b = true.stage_profile(lo, hi, 1, 1, 1, True)
            assert a.time_fwd >= b.time_fwd - 1e-12
            assert a.time_bwd >= b.time_bwd - 1e-12


class TestLossValidation:
    def test_agreement(self):
        r = run_loss_validation(steps=3)
        assert r.within_paper_tolerance
        assert r.max_diff < 1e-9
        assert len(r.reference_losses) == 3

    def test_different_seeds_differ(self):
        a = run_loss_validation(steps=2, seed=0)
        b = run_loss_validation(steps=2, seed=1)
        assert a.reference_losses != b.reference_losses
