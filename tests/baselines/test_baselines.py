"""Tests for the baseline frameworks (DP, Megatron-LM, GPipe variants,
PipeDream-2BW) and their paper-documented behaviours."""

import pytest

from repro.baselines import (
    TABLE1_ROWS,
    run_data_parallel,
    run_gpipe_hybrid,
    run_gpipe_model,
    run_megatron,
    run_pipedream_2bw,
)
from repro.baselines.gpipe import layer_units, _uniform_layer_stages
from repro.hardware import Precision, paper_cluster, single_node, tiny_cluster
from repro.models import BertConfig, ResNetConfig, build_bert, build_resnet
from repro.profiler import GraphProfiler


@pytest.fixture(scope="module")
def small_bert():
    cfg = BertConfig(hidden_size=64, num_layers=8, num_heads=4, seq_len=32,
                     vocab_size=512)
    return cfg, build_bert(cfg)


@pytest.fixture(scope="module")
def small_resnet():
    return build_resnet(
        ResNetConfig(depth=50, width_factor=1, image_size=64, num_classes=100)
    )


class TestDataParallel:
    def test_feasible_small_model(self, small_bert, cluster):
        _, g = small_bert
        result = run_data_parallel(g, cluster, 256)
        assert result.feasible
        assert result.throughput > 0
        assert result.config["accumulation_steps"] >= 1

    def test_oom_when_static_exceeds_memory(self, cluster):
        g = build_bert(BertConfig(hidden_size=2048, num_layers=96))
        result = run_data_parallel(g, cluster, 256)
        assert not result.feasible
        assert "GiB" in result.reason

    def test_accumulation_shrinks_memory(self, small_bert):
        _, g = small_bert
        # a memory-starved device forces accumulation > 1
        cluster = tiny_cluster(num_nodes=1, devices_per_node=4,
                               memory_bytes=32 * 1024**2)
        result = run_data_parallel(g, cluster, 256)
        assert result.feasible
        assert result.config["accumulation_steps"] > 1

    def test_indivisible_batch(self, small_bert, cluster):
        _, g = small_bert
        result = run_data_parallel(g, cluster, 100)  # 100 % 32 != 0
        assert not result.feasible


class TestMegatron:
    def test_feasible_on_bert(self, small_bert, cluster):
        cfg, g = small_bert
        result = run_megatron(g, cfg, cluster, 256)
        assert result.feasible
        assert result.config["tensor_parallel"] >= 1
        assert (
            result.config["tensor_parallel"] * result.config["data_parallel"]
            == cluster.total_devices
        )

    def test_rejects_resnet(self, small_resnet, cluster):
        result = run_megatron(small_resnet, BertConfig(), cluster, 256)
        assert not result.feasible
        assert "Transformer" in result.reason

    def test_ooms_on_biggest_models(self, cluster):
        """The paper's headline: Megatron cannot train the largest grid
        points (no gradient accumulation)."""
        cfg = BertConfig(hidden_size=2048, num_layers=256)
        g = build_bert(cfg)
        result = run_megatron(g, cfg, cluster, 256)
        assert not result.feasible
        assert "gradient accumulation" in result.reason

    def test_trains_medium_models_dp_cannot(self, cluster):
        cfg = BertConfig(hidden_size=1536, num_layers=96)  # 2.8B
        g = build_bert(cfg)
        p = GraphProfiler(g, cluster)
        meg = run_megatron(g, cfg, cluster, 256, profiler=p)
        dp = run_data_parallel(g, cluster, 256, profiler=p)
        assert meg.feasible and not dp.feasible

    def test_amp(self, small_bert, cluster):
        cfg, g = small_bert
        p32 = GraphProfiler(g, cluster, Precision.FP32)
        pamp = GraphProfiler(g, cluster, Precision.AMP)
        r32 = run_megatron(g, cfg, cluster, 256, Precision.FP32, p32)
        ramp = run_megatron(g, cfg, cluster, 256, Precision.AMP, pamp)
        assert ramp.throughput > r32.throughput


class TestLayerUnits:
    def test_bert_units(self, small_bert):
        _, g = small_bert
        units = layer_units(g)
        keys = [k for k, _ in units]
        assert keys[0] == "embeddings"
        assert "layer0" in keys and "layer7" in keys
        assert "mlm" in keys and "nsp" in keys

    def test_resnet_units_block_granularity(self, small_resnet):
        units = layer_units(small_resnet)
        keys = [k for k, _ in units]
        assert "stem" in keys
        assert "stage0.block0" in keys
        assert "head" in keys

    def test_units_cover_all_tasks(self, small_bert):
        _, g = small_bert
        units = layer_units(g)
        covered = [t for _, tasks in units for t in tasks]
        assert sorted(covered) == sorted(g.tasks)

    def test_uniform_stages(self, small_bert):
        _, g = small_bert
        stages = _uniform_layer_stages(layer_units(g), 4)
        assert len(stages) == 4
        # embeddings first, heads last
        assert any(t.startswith("embeddings") for t in stages[0])
        assert any(t.startswith("mlm") for t in stages[-1])
        covered = [t for s in stages for t in s]
        assert sorted(covered) == sorted(g.tasks)

    def test_indivisible_layers(self, small_bert):
        _, g = small_bert
        assert _uniform_layer_stages(layer_units(g), 3) is None  # 8 % 3


class TestGPipeHybrid:
    def test_feasible(self, small_bert, cluster):
        _, g = small_bert
        result = run_gpipe_hybrid(g, cluster, 256)
        assert result.feasible
        assert result.config["stages"] in (2, 4, 8, 16)
        assert result.config["stages"] * result.config["replicas"] == 32

    def test_rejects_resnet(self, small_resnet, cluster):
        result = run_gpipe_hybrid(small_resnet, cluster, 256)
        assert not result.feasible
        assert "BERT" in result.reason

    def test_cannot_use_one_stage(self, small_bert, cluster):
        """GPipe 'does not work with a single stage' -- on tiny models
        this costs it throughput vs RaNNC's S=1 mode."""
        _, g = small_bert
        result = run_gpipe_hybrid(g, cluster, 256)
        assert result.config["stages"] >= 2


class TestGPipeModel:
    def test_single_node_only(self, small_resnet, cluster):
        result = run_gpipe_model(small_resnet, cluster, 128)
        assert not result.feasible
        assert "single node" in result.reason

    def test_feasible_on_resnet(self, small_resnet):
        result = run_gpipe_model(small_resnet, single_node(), 128)
        assert result.feasible
        assert result.config["stages"] <= 8
        assert result.config["microbatches"] <= 64

    def test_works_on_bert_too(self, small_bert):
        # torchgpipe is architecture-agnostic (sequential modules)
        _, g = small_bert
        result = run_gpipe_model(g, single_node(), 128)
        assert result.feasible


class TestPipeDream2BW:
    def test_feasible(self, small_bert, cluster):
        _, g = small_bert
        result = run_pipedream_2bw(g, cluster, 256)
        assert result.feasible

    def test_async_beats_gpipe_same_partitioning(self, small_bert, cluster):
        """Same stages, no flush bubble: 2BW >= GPipe-Hybrid throughput."""
        _, g = small_bert
        p = GraphProfiler(g, cluster)
        gpipe = run_gpipe_hybrid(g, cluster, 256, profiler=p)
        twobw = run_pipedream_2bw(g, cluster, 256, profiler=p)
        assert twobw.throughput >= 0.95 * gpipe.throughput

    def test_rejects_resnet(self, small_resnet, cluster):
        result = run_pipedream_2bw(small_resnet, cluster, 256)
        assert not result.feasible


class TestTable1Rows:
    def test_thirteen_rows(self):
        assert len(TABLE1_ROWS) == 13

    def test_rannc_row(self):
        rannc = TABLE1_ROWS[-1]
        assert rannc.name == "RaNNC"
        assert rannc.partitioning_style == "graph"
        assert rannc.hybrid_parallelism and rannc.automatic
        assert rannc.memory_estimation and rannc.staleness_free

    def test_result_str(self, small_bert, cluster):
        _, g = small_bert
        result = run_data_parallel(g, cluster, 256)
        assert "samples/s" in str(result)
        bad = run_data_parallel(g, cluster, 100)
        assert "INFEASIBLE" in str(bad)
