"""Regression test for the baseline boundary-tier bug: GPipe-Hybrid and
PipeDream-2BW historically charged *every* stage boundary at the
same-node NVLink rate, even when a pipeline straddled nodes.  On a
cluster whose inter-node link is 10x slower, the fixed evaluation must
price the node-crossing boundary at the slow tier -- i.e. the result
must actually depend on the inter-node bandwidth."""

import dataclasses

import pytest

from repro.baselines import run_gpipe_hybrid, run_pipedream_2bw
from repro.hardware.presets import tiny_cluster
from repro.models import BertConfig, build_bert


@pytest.fixture(scope="module")
def graph():
    return build_bert(
        BertConfig(hidden_size=64, num_layers=8, num_heads=4, seq_len=32,
                   vocab_size=512)
    )


def _clusters():
    """A 2x2 layout where four 1-device stages must straddle the node
    boundary, in two variants: uniform links, and a 10x slower
    inter-node tier.  Bandwidths are scaled down so boundary transfers
    dominate compute and the mispriced tier cannot hide behind a
    compute-bound bottleneck stage.  Everything else is identical."""
    uniform = dataclasses.replace(
        tiny_cluster(num_nodes=2, devices_per_node=2),
        intra_node_bandwidth=1e8,
        inter_node_bandwidth=1e8,
    )
    slow = dataclasses.replace(uniform, inter_node_bandwidth=1e7)
    return uniform, slow


@pytest.mark.parametrize(
    "run", [run_gpipe_hybrid, run_pipedream_2bw],
    ids=["gpipe_hybrid", "pipedream_2bw"],
)
def test_node_straddling_pipeline_pays_the_inter_node_rate(run, graph):
    uniform, slow = _clusters()
    # S=4 on 4 devices -> replicas=1: no data-parallel allreduce, so the
    # *only* way the inter-node bandwidth can reach the result is
    # through the stage-boundary p2p charges the fix routes by tier
    fast_result = run(graph, uniform, 64, stage_counts=(4,))
    slow_result = run(graph, slow, 64, stage_counts=(4,))
    assert fast_result.feasible and slow_result.feasible
    assert fast_result.config["replicas"] == 1
    assert slow_result.iteration_time > fast_result.iteration_time


def test_intra_node_pipelines_are_unaffected(graph):
    # guard that the boundary fix did not leak the slow rate into
    # same-node boundaries: with replicas=1 on a single node every
    # boundary stays on NVLink, so the inter-node bandwidth must not
    # reach the result at all
    uniform_1n = tiny_cluster(num_nodes=1, devices_per_node=4)
    slow_1n = dataclasses.replace(
        uniform_1n,
        inter_node_bandwidth=uniform_1n.intra_node_bandwidth / 10.0,
    )
    a = run_gpipe_hybrid(graph, uniform_1n, 64, stage_counts=(4,))
    b = run_gpipe_hybrid(graph, slow_1n, 64, stage_counts=(4,))
    assert a.feasible and b.feasible
    assert a.iteration_time == b.iteration_time
