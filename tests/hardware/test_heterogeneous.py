"""Device classes and heterogeneous :class:`ClusterSpec` invariants."""

import dataclasses

import pytest

from repro.hardware import (
    A100,
    V100,
    DeviceClass,
    mixed_cluster,
    tiny_mixed_cluster,
)
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision


def two_class_cluster(widths=(4, 2), straggler=1.0):
    """Two single-node classes with the given (non-uniform) widths."""
    small = dataclasses.replace(V100, name="small", memory_bytes=2 * 2**30)
    big = dataclasses.replace(V100, name="big", memory_bytes=8 * 2**30)
    return ClusterSpec(
        num_nodes=2,
        devices_per_node=max(widths),
        device=small,
        intra_node_bandwidth=25e9,
        inter_node_bandwidth=12.5e9,
        device_classes=(
            DeviceClass("a", small, 1, widths[0],
                        straggler_factor=straggler),
            DeviceClass("b", big, 1, widths[1]),
        ),
    )


class TestDeviceClass:
    def test_time_factor_identity(self):
        cls = DeviceClass("x", V100, 1, 8)
        assert cls.time_factor(V100, Precision.FP32) == 1.0

    def test_time_factor_straggler(self):
        cls = DeviceClass("x", V100, 1, 8, straggler_factor=1.5)
        assert cls.time_factor(V100, Precision.FP32) == pytest.approx(1.5)

    def test_time_factor_faster_device(self):
        cls = DeviceClass("x", A100, 1, 8)
        f = cls.time_factor(V100, Precision.FP32)
        assert 0.0 < f < 1.0  # A100 runs V100-profiled stages faster

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceClass("x", V100, 0, 8)
        with pytest.raises(ValueError):
            DeviceClass("x", V100, 1, 0)
        with pytest.raises(ValueError):
            DeviceClass("x", V100, 1, 8, straggler_factor=0.0)


class TestHeterogeneousClusterSpec:
    def test_node_counts_must_match(self):
        with pytest.raises(ValueError, match="num_nodes"):
            ClusterSpec(
                num_nodes=3,
                devices_per_node=8,
                device=V100,
                intra_node_bandwidth=25e9,
                inter_node_bandwidth=12.5e9,
                device_classes=(DeviceClass("a", V100, 2, 8),),
            )

    def test_devices_per_node_is_max_width(self):
        with pytest.raises(ValueError, match="devices_per_node"):
            ClusterSpec(
                num_nodes=1,
                devices_per_node=4,
                device=V100,
                intra_node_bandwidth=25e9,
                inter_node_bandwidth=12.5e9,
                device_classes=(DeviceClass("a", V100, 1, 8),),
            )

    def test_flat_comm_model_required(self):
        with pytest.raises(ValueError, match="flat"):
            ClusterSpec(
                num_nodes=1,
                devices_per_node=8,
                device=V100,
                intra_node_bandwidth=25e9,
                inter_node_bandwidth=12.5e9,
                comm_model="topology",
                device_classes=(DeviceClass("a", V100, 1, 8),),
            )

    def test_unique_class_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSpec(
                num_nodes=2,
                devices_per_node=8,
                device=V100,
                intra_node_bandwidth=25e9,
                inter_node_bandwidth=12.5e9,
                device_classes=(
                    DeviceClass("a", V100, 1, 8),
                    DeviceClass("a", V100, 1, 8),
                ),
            )

    def test_total_devices_non_uniform(self):
        cl = two_class_cluster(widths=(4, 2))
        assert cl.total_devices == 6
        assert cl.is_heterogeneous

    def test_node_of_non_uniform(self):
        # rank -> node arithmetic must not assume uniform node widths:
        # node 0 hosts ranks 0-3, node 1 hosts ranks 4-5
        cl = two_class_cluster(widths=(4, 2))
        assert [cl.node_of(r) for r in range(6)] == [0, 0, 0, 0, 1, 1]
        with pytest.raises(ValueError):
            cl.node_of(6)
        with pytest.raises(ValueError):
            cl.node_of(-1)

    def test_node_first_ranks(self):
        cl = two_class_cluster(widths=(4, 2))
        assert cl.node_first_ranks() == (0, 4, 6)
        assert cl.node_device_counts() == (4, 2)

    def test_rank_tables(self):
        cl = two_class_cluster(widths=(2, 2), straggler=2.0)
        mems = cl.rank_memories()
        assert len(mems) == 4
        assert mems[0] < mems[2]  # small class first, big class second
        facs = cl.rank_time_factors(Precision.FP32)
        assert facs == (2.0, 2.0, 1.0, 1.0)

    def test_homogeneous_rank_tables(self):
        cl = ClusterSpec(num_nodes=2, devices_per_node=2, device=V100,
                         intra_node_bandwidth=25e9,
                         inter_node_bandwidth=12.5e9)
        assert cl.rank_memories() == (V100.usable_memory,) * 4
        assert cl.rank_time_factors(Precision.FP32) == (1.0,) * 4

    def test_scaled_refused(self):
        with pytest.raises(ValueError, match="drop_node"):
            two_class_cluster().scaled(4)

    def test_drop_node(self):
        cl = two_class_cluster(widths=(4, 2))
        survivor = cl.drop_node(0)
        assert survivor.num_nodes == 1
        assert survivor.total_devices == 2
        assert survivor.devices_per_node == 2  # max width recomputed
        with pytest.raises(ValueError):
            survivor.drop_node(0)  # cannot drop the last node

    def test_grown(self):
        cl = two_class_cluster(widths=(4, 2))
        bigger = cl.grown(2, class_name="b")
        assert bigger.num_nodes == 4
        assert bigger.total_devices == 10
        with pytest.raises(ValueError):
            cl.grown(1, class_name="nope")


class TestPresets:
    def test_mixed_cluster(self):
        cl = mixed_cluster(v100_nodes=2, a100_nodes=2)
        assert cl.is_heterogeneous
        assert cl.total_devices == 32
        # V100 is the profiling reference; A100 ranks run faster
        facs = cl.rank_time_factors(Precision.FP32)
        assert facs[0] == 1.0 and facs[-1] < 1.0

    def test_tiny_mixed_cluster(self):
        cl = tiny_mixed_cluster()
        assert cl.is_heterogeneous
        mems = cl.rank_memories()
        assert mems[0] < mems[-1]  # small nodes first


class TestDeviceAssignmentNonUniform:
    def test_rank_node_arithmetic(self):
        # regression: DeviceAssignment's span/crossing checks delegate
        # to cluster.node_of, which must respect non-uniform widths
        from repro.partitioner.allocation import (
            allocate_devices,
            boundary_report,
        )

        cl = two_class_cluster(widths=(4, 2))
        asg = allocate_devices(cl, [4, 2], 1)
        assert asg.devices_of(0, 0) == (0, 1, 2, 3)
        assert asg.devices_of(0, 1) == (4, 5)
        assert not asg.stage_spans_nodes(0, 0)
        assert not asg.stage_spans_nodes(0, 1)
        # boundary rank 3 -> 4 crosses from node 0 to node 1; a uniform
        # devices_per_node=4 heuristic would also call rank 5 "node 1"
        # correctly here, but rank 4 "node 1" only via the prefix sums
        assert asg.crossing_is_internode(0, 0)
        report = boundary_report(asg, 1, 2)
        assert report["internode_boundaries"] == 1.0

    def test_spanning_stage(self):
        from repro.partitioner.allocation import allocate_devices

        cl = two_class_cluster(widths=(4, 2))
        asg = allocate_devices(cl, [3, 3], 1)
        assert not asg.stage_spans_nodes(0, 0)  # ranks 0-2, node 0
        assert asg.stage_spans_nodes(0, 1)  # ranks 3-5 straddle nodes


class TestHeteroTopology:
    def test_routes_on_non_uniform_nodes(self):
        # the link-level topology must build and route over non-uniform
        # nodes without inventing ranks (base = node * devices_per_node
        # was wrong whenever an earlier node was narrower)
        from repro.comm.topology import NetworkTopology

        small = dataclasses.replace(V100, name="small")
        cl = ClusterSpec(
            num_nodes=2,
            devices_per_node=4,
            device=small,
        intra_node_bandwidth=25e9,
        inter_node_bandwidth=12.5e9,
            device_classes=(
                DeviceClass("a", small, 1, 2),
                DeviceClass("b", V100, 1, 4),
            ),
        )
        topo = NetworkTopology(cl)
        # node 0: ranks 0-1; node 1: ranks 2-5
        assert topo.p2p_time(0, 1, 1e6) < topo.p2p_time(1, 2, 1e6)
        assert topo.p2p_time(2, 5, 1e6) < topo.p2p_time(0, 5, 1e6)
        for src in range(6):
            for dst in range(6):
                assert topo.p2p_time(src, dst, 1e6) >= 0.0
