"""Tests for device/cluster specs and communication cost formulas."""

import pytest

from repro.hardware import (
    ClusterSpec,
    DeviceSpec,
    Precision,
    V100,
    paper_cluster,
    single_node,
    tiny_cluster,
)


class TestDeviceSpec:
    def test_v100_constants(self):
        assert V100.memory_bytes == 32 * 1024**3
        assert V100.peak_flops_fp32 == pytest.approx(15.7e12)
        assert V100.peak_flops_fp16 == pytest.approx(125e12)

    def test_precision_peaks(self):
        assert V100.peak_flops(Precision.FP32) < V100.peak_flops(Precision.AMP)

    def test_usable_memory_reserve(self):
        assert V100.usable_memory < V100.memory_bytes
        assert V100.usable_memory == pytest.approx(
            V100.memory_bytes * (1 - V100.memory_reserve_fraction)
        )

    def test_matmul_time_scales(self):
        t1 = V100.matmul_time(1e12, Precision.FP32)
        t2 = V100.matmul_time(2e12, Precision.FP32)
        assert t2 == pytest.approx(2 * t1)
        assert V100.matmul_time(1e12, Precision.AMP) < t1


class TestPrecision:
    def test_activation_factor(self):
        assert Precision.FP32.activation_bytes_factor == 1.0
        assert Precision.AMP.activation_bytes_factor == 0.5


class TestClusterSpec:
    def test_paper_cluster_layout(self):
        cl = paper_cluster()
        assert cl.num_nodes == 4
        assert cl.devices_per_node == 8
        assert cl.total_devices == 32
        assert cl.intra_node_bandwidth == 25.0e9
        assert cl.inter_node_bandwidth == 12.5e9  # 100 Gb/s

    def test_single_node(self):
        assert single_node().total_devices == 8

    def test_node_of(self):
        cl = paper_cluster()
        assert cl.node_of(0) == 0
        assert cl.node_of(7) == 0
        assert cl.node_of(8) == 1
        assert cl.node_of(31) == 3
        with pytest.raises(ValueError):
            cl.node_of(32)

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec(0, 8, V100, 1e9, 1e9)

    def test_p2p_time(self):
        cl = paper_cluster()
        fast = cl.p2p_time(1e9, same_node=True)
        slow = cl.p2p_time(1e9, same_node=False)
        assert slow > fast
        assert fast == pytest.approx(cl.comm_latency + 1e9 / 25e9)

    def test_allreduce_single_rank_free(self):
        cl = paper_cluster()
        assert cl.allreduce_time(1e9, 1) == 0.0

    def test_allreduce_ring_formula(self):
        cl = paper_cluster()
        t = cl.allreduce_time(1e9, 4, spans_nodes=False)
        expected = cl.comm_latency * 6 + (2 * 3 / 4) * 1e9 / 25e9
        assert t == pytest.approx(expected)

    def test_allreduce_monotone_in_size(self):
        cl = paper_cluster()
        assert cl.allreduce_time(2e9, 8) > cl.allreduce_time(1e9, 8)

    def test_allreduce_internode_slower(self):
        cl = paper_cluster()
        assert cl.allreduce_time(1e9, 8, True) > cl.allreduce_time(1e9, 8, False)

    def test_scaled(self):
        cl = paper_cluster().scaled(2)
        assert cl.num_nodes == 2
        assert cl.devices_per_node == 8
        assert cl.device is V100

    def test_tiny_cluster_memory(self):
        cl = tiny_cluster(memory_bytes=1024**3)
        assert cl.device.memory_bytes == 1024**3
