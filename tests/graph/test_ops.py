"""Unit tests for the operator registry: shape inference + FLOP formulas."""

import pytest

from repro.graph.ops import OpSpec, registry


def infer(op, shapes, attrs=None):
    return registry.infer_shapes(op, shapes, attrs or {})


class TestMatmul:
    def test_2d(self):
        assert infer("matmul", [(3, 4), (4, 5)]) == [(3, 5)]

    def test_batched_lhs(self):
        assert infer("matmul", [(1, 8, 4), (4, 5)]) == [(1, 8, 5)]

    def test_batched_both(self):
        assert infer("matmul", [(2, 16, 8, 4), (2, 16, 4, 8)]) == [(2, 16, 8, 8)]

    def test_broadcast_leading(self):
        assert infer("matmul", [(1, 16, 8, 4), (1, 1, 4, 8)]) == [(1, 16, 8, 8)]

    def test_inner_mismatch(self):
        with pytest.raises(ValueError, match="inner-dim"):
            infer("matmul", [(3, 4), (5, 6)])

    def test_flops(self):
        spec = registry.get("matmul")
        assert spec.flops([(3, 4), (4, 5)], [(3, 5)], {}) == 2 * 3 * 4 * 5


class TestLinear:
    def test_shapes(self):
        assert infer("linear", [(1, 8, 16), (32, 16), (32,)]) == [(1, 8, 32)]

    def test_bias_mismatch(self):
        with pytest.raises(ValueError, match="bias"):
            infer("linear", [(1, 16), (32, 16), (16,)])

    def test_flops(self):
        spec = registry.get("linear")
        assert spec.flops([(1, 16), (32, 16), (32,)], [(1, 32)], {}) == 2 * 32 * 16


class TestElementwise:
    def test_add_broadcast(self):
        assert infer("add", [(1, 8, 16), (16,)]) == [(1, 8, 16)]
        assert infer("add", [(1, 8, 16), (8, 16)]) == [(1, 8, 16)]

    def test_add_incompatible(self):
        with pytest.raises(ValueError, match="broadcast"):
            infer("add", [(1, 8), (1, 7)])

    @pytest.mark.parametrize("op", ["relu", "gelu", "tanh", "sigmoid", "dropout", "softmax", "neg", "identity", "scale"])
    def test_unary_preserves_shape(self, op):
        assert infer(op, [(2, 3, 4)]) == [(2, 3, 4)]

    def test_elementwise_flag(self):
        assert registry.get("relu").elementwise
        assert not registry.get("matmul").elementwise


class TestShapeOps:
    def test_transpose_default(self):
        assert infer("transpose", [(3, 4, 5)]) == [(5, 4, 3)]

    def test_transpose_perm(self):
        assert infer("transpose", [(1, 8, 4, 2)], {"perm": (0, 2, 1, 3)}) == [
            (1, 4, 8, 2)
        ]

    def test_transpose_bad_perm(self):
        with pytest.raises(ValueError, match="perm"):
            infer("transpose", [(3, 4)], {"perm": (0, 0)})

    def test_reshape(self):
        assert infer("reshape", [(1, 8, 16)], {"shape": (1, 8, 4, 4)}) == [
            (1, 8, 4, 4)
        ]

    def test_reshape_infer_dim(self):
        assert infer("reshape", [(1, 8, 16)], {"shape": (1, -1)}) == [(1, 128)]

    def test_reshape_numel_mismatch(self):
        with pytest.raises(ValueError, match="numel"):
            infer("reshape", [(1, 8)], {"shape": (1, 9)})

    def test_flatten(self):
        assert infer("flatten", [(2, 3, 4, 5)]) == [(2, 60)]

    def test_concat(self):
        assert infer("concat", [(1, 4), (1, 6)], {"axis": 1}) == [(1, 10)]

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            infer("concat", [(1, 4), (2, 6)], {"axis": 1})

    def test_slice_rows(self):
        assert infer("slice_rows", [(1, 16, 8)], {"start": 0, "stop": 1}) == [
            (1, 1, 8)
        ]
        with pytest.raises(ValueError):
            infer("slice_rows", [(1, 4)], {"start": 3, "stop": 9})


class TestEmbeddingAndLoss:
    def test_embedding(self):
        assert infer("embedding", [(1, 16), (100, 32)]) == [(1, 16, 32)]

    def test_cross_entropy(self):
        assert infer("cross_entropy", [(1, 16, 100), (1, 16)]) == [(1,)]
        with pytest.raises(ValueError):
            infer("cross_entropy", [(1, 16, 100), (1, 15)])

    def test_mse(self):
        assert infer("mse_loss", [(4, 8), (4, 8)]) == [(1,)]


class TestConvOps:
    def test_conv2d_basic(self):
        assert infer(
            "conv2d", [(1, 3, 32, 32), (8, 3, 3, 3)], {"stride": 1, "padding": 1}
        ) == [(1, 8, 32, 32)]

    def test_conv2d_stride(self):
        assert infer(
            "conv2d", [(1, 3, 224, 224), (64, 3, 7, 7)], {"stride": 2, "padding": 3}
        ) == [(1, 64, 112, 112)]

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(ValueError, match="channels"):
            infer("conv2d", [(1, 3, 8, 8), (8, 4, 3, 3)])

    def test_conv2d_collapse(self):
        with pytest.raises(ValueError, match="collapsed"):
            infer("conv2d", [(1, 3, 2, 2), (8, 3, 5, 5)])

    def test_conv_flops(self):
        spec = registry.get("conv2d")
        ins = [(1, 3, 8, 8), (4, 3, 3, 3)]
        outs = infer("conv2d", ins, {"stride": 1, "padding": 1})
        assert spec.flops(ins, outs, {"stride": 1, "padding": 1}) == (
            2 * 1 * 4 * 8 * 8 * 3 * 3 * 3
        )

    def test_batchnorm(self):
        assert infer("batchnorm2d", [(1, 8, 4, 4), (8,), (8,)]) == [(1, 8, 4, 4)]

    def test_maxpool(self):
        assert infer(
            "maxpool2d", [(1, 8, 32, 32)], {"kernel": 3, "stride": 2, "padding": 1}
        ) == [(1, 8, 16, 16)]

    def test_global_avgpool(self):
        assert infer("global_avgpool", [(1, 8, 7, 7)]) == [(1, 8)]


class TestRegistry:
    def test_unknown_op(self):
        with pytest.raises(KeyError, match="unknown op"):
            registry.get("not_an_op")

    def test_contains(self):
        assert "matmul" in registry
        assert "frobnicate" not in registry

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                OpSpec(name="matmul", infer=lambda i, a: [i[0]], flops=lambda i, o, a: 0)
            )

    def test_names_sorted(self):
        names = registry.names()
        assert names == sorted(names)
        assert len(names) >= 25

    def test_backward_flops_factor(self, mlp_graph):
        fc0 = mlp_graph.tasks["fc0"]
        fwd = registry.flops(fc0, mlp_graph, 4)
        bwd = registry.backward_flops(fc0, mlp_graph, 4)
        assert bwd == 2.0 * fwd

    def test_batched_flop_scaling(self, mlp_graph):
        fc0 = mlp_graph.tasks["fc0"]
        assert registry.flops(fc0, mlp_graph, 8) == 8 * registry.flops(
            fc0, mlp_graph, 1
        )
