"""Unit tests for the task-graph IR core."""

import pytest

from repro.graph.ir import (
    DataType,
    TaskGraph,
    TaskNode,
    ValueKind,
    ValueNode,
    human_size,
)


def _simple_graph():
    g = TaskGraph("g")
    g.add_value(ValueNode("x", (1, 4), kind=ValueKind.INPUT))
    g.add_value(ValueNode("w", (4, 4), kind=ValueKind.PARAM, batched=False))
    g.add_value(ValueNode("h", (1, 4)))
    g.add_task(TaskNode("mm", "matmul", ["x", "w"], ["h"]))
    g.mark_output("h")
    return g


class TestValueNode:
    def test_numel_batched(self):
        v = ValueNode("v", (1, 8, 4), batched=True)
        assert v.numel(1) == 32
        assert v.numel(5) == 160

    def test_numel_unbatched(self):
        v = ValueNode("w", (8, 4), batched=False)
        assert v.numel(5) == 32

    def test_nbytes_dtype(self):
        v = ValueNode("v", (2, 2), dtype=DataType.FLOAT16)
        assert v.nbytes(1) == 8
        v64 = ValueNode("i", (2, 2), dtype=DataType.INT64)
        assert v64.nbytes(1) == 32

    def test_is_leaf(self):
        g = _simple_graph()
        assert g.values["x"].is_leaf()
        assert g.values["w"].is_leaf()
        assert not g.values["h"].is_leaf()


class TestDataType:
    @pytest.mark.parametrize(
        "dtype,size",
        [
            (DataType.FLOAT32, 4),
            (DataType.FLOAT16, 2),
            (DataType.INT64, 8),
            (DataType.BOOL, 1),
        ],
    )
    def test_itemsize(self, dtype, size):
        assert dtype.itemsize == size


class TestTaskGraph:
    def test_duplicate_value_rejected(self):
        g = TaskGraph()
        g.add_value(ValueNode("x", (1,)))
        with pytest.raises(ValueError, match="duplicate value"):
            g.add_value(ValueNode("x", (1,)))

    def test_duplicate_task_rejected(self):
        g = _simple_graph()
        with pytest.raises(ValueError, match="duplicate task"):
            g.add_task(TaskNode("mm", "matmul", ["x", "w"], ["h"]))

    def test_unknown_input_rejected(self):
        g = TaskGraph()
        g.add_value(ValueNode("out", (1,)))
        with pytest.raises(ValueError, match="unknown value"):
            g.add_task(TaskNode("t", "relu", ["nope"], ["out"]))

    def test_two_producers_rejected(self):
        g = _simple_graph()
        g.add_value(ValueNode("x2", (1, 4), kind=ValueKind.INPUT))
        with pytest.raises(ValueError, match="two producers"):
            g.add_task(TaskNode("mm2", "matmul", ["x2", "w"], ["h"]))

    def test_consumers_tracked(self):
        g = _simple_graph()
        assert g.values["x"].consumers == ["mm"]
        assert [t.name for t in g.consumers_of("x")] == ["mm"]
        assert g.producer_of("h").name == "mm"
        assert g.producer_of("x") is None

    def test_inputs_outputs(self):
        g = _simple_graph()
        assert [v.name for v in g.inputs] == ["x"]
        assert [v.name for v in g.outputs] == ["h"]
        assert g.values["h"].kind is ValueKind.OUTPUT

    def test_num_parameters(self):
        g = _simple_graph()
        assert g.num_parameters() == 16
        assert g.parameter_bytes() == 64

    def test_iter_edges(self, mlp_graph):
        edges = list(mlp_graph.iter_edges())
        assert ("fc0", "act0") in edges
        assert all(a in mlp_graph.tasks and b in mlp_graph.tasks for a, b in edges)

    def test_len_and_repr(self, mlp_graph):
        assert len(mlp_graph) == len(mlp_graph.tasks)
        assert "TaskGraph" in repr(mlp_graph)


class TestBoundary:
    def test_whole_graph_boundary(self, mlp_graph):
        in_values, out_values = mlp_graph.boundary_values(list(mlp_graph.tasks))
        in_names = set(in_values)
        assert "x" in in_names and "y" in in_names
        assert out_values == ["loss.out"]

    def test_prefix_boundary(self, mlp_graph):
        in_values, out_values = mlp_graph.boundary_values(["fc0", "act0"])
        assert "x" in in_values
        assert out_values == ["act0.out"]

    def test_cut_bytes_excludes_params(self, mlp_graph):
        in_bytes, out_bytes = mlp_graph.cut_bytes(["fc0"], batch_size=2)
        # input x is (1,16) fp32 batched: 2*16*4 bytes; weights excluded
        assert in_bytes == 2 * 16 * 4
        assert out_bytes == 2 * 32 * 4


class TestExtractSubgraph:
    def test_extract_prefix(self, mlp_graph):
        sub = mlp_graph.extract_subgraph(["fc0", "act0"])
        assert set(sub.tasks) == {"fc0", "act0"}
        assert "x" in sub.input_names
        assert sub.output_names == ["act0.out"]
        # params keep their kind
        assert sub.values["fc0.weight"].kind is ValueKind.PARAM

    def test_extract_suffix_inputs_are_activations_turned_inputs(self, mlp_graph):
        tasks = [t for t in mlp_graph.tasks if t not in ("fc0", "act0")]
        sub = mlp_graph.extract_subgraph(tasks)
        assert sub.values["act0.out"].kind is ValueKind.INPUT

    def test_extract_preserves_shapes(self, mlp_graph):
        sub = mlp_graph.extract_subgraph(list(mlp_graph.tasks))
        for name, v in sub.values.items():
            assert v.shape == mlp_graph.values[name].shape


def test_human_size():
    assert human_size(0) == "0 B"
    assert human_size(512) == "512.00 B"
    assert human_size(2048) == "2.00 KiB"
    assert human_size(3 * 1024**3) == "3.00 GiB"
