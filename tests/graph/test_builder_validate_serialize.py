"""Tests for the tracing builder, structural validation and JSON
round-tripping."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.ir import DataType, TaskNode, ValueKind, ValueNode
from repro.graph.serialize import graph_from_json, graph_to_json
from repro.graph.validate import GraphValidationError, validate_graph


class TestBuilder:
    def test_shapes_inferred(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 8))
        h = b.linear(x, 16, name="fc")
        assert h.shape == (1, 16)
        assert b.graph.values["fc.weight"].shape == (16, 8)

    def test_param_not_batched(self):
        b = GraphBuilder("t")
        w = b.param("w", (4, 4))
        assert not w.batched
        assert b.graph.values["w"].kind is ValueKind.PARAM

    def test_batched_propagation(self):
        b = GraphBuilder("t")
        w = b.param("w", (4, 4))
        wt = b.op("transpose", [w])
        assert not wt.batched  # constant chain stays unbatched
        x = b.input("x", (1, 4))
        h = b.op("matmul", [x, wt])
        assert h.batched

    def test_dtype_propagation(self):
        b = GraphBuilder("t")
        ids = b.input("ids", (1, 4), DataType.INT64)
        w = b.param("emb", (10, 8))
        out = b.op("embedding", [ids, w])
        assert out.dtype is DataType.FLOAT32

    def test_arity_checked(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4))
        with pytest.raises(ValueError, match="expects 2 inputs"):
            b.op("matmul", [x])

    def test_fresh_names_unique(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4))
        a = b.op("relu", [x])
        c = b.op("relu", [a])
        assert len({t for t in b.graph.tasks}) == 2

    def test_layernorm_helper(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4, 8))
        h = b.layernorm(x, name="ln")
        assert h.shape == (1, 4, 8)
        assert b.graph.values["ln.gamma"].shape == (8,)

    def test_conv_helpers(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 3, 8, 8))
        h = b.conv2d(x, 4, kernel=3, padding=1, name="c")
        h = b.batchnorm2d(h, name="bn")
        assert h.shape == (1, 4, 8, 8)

    def test_finish_marks_outputs(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4))
        h = b.op("relu", [x])
        g = b.finish([h])
        assert g.output_names == [h.name]


class TestValidate:
    def test_valid_models_pass(self, mlp_graph, diamond_graph, fig2_graph,
                               tiny_bert, tiny_resnet):
        for g in (mlp_graph, diamond_graph, fig2_graph, tiny_bert, tiny_resnet):
            validate_graph(g)

    def test_missing_output_rejected(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4))
        b.op("relu", [x])
        with pytest.raises(GraphValidationError, match="no outputs"):
            validate_graph(b.graph)

    def test_batched_param_rejected(self, mlp_graph):
        mlp_graph.values["fc0.weight"].batched = True
        with pytest.raises(GraphValidationError, match="is batched"):
            validate_graph(mlp_graph)

    def test_corrupted_shape_rejected(self, mlp_graph):
        mlp_graph.values["fc0.out"].shape = (1, 999)
        with pytest.raises(GraphValidationError, match="inferred"):
            validate_graph(mlp_graph)

    def test_unknown_op_rejected(self, mlp_graph):
        mlp_graph.tasks["act0"].op_type = "mystery"
        with pytest.raises(GraphValidationError, match="unknown op"):
            validate_graph(mlp_graph)

    def test_non_topological_order_rejected(self):
        # hand-build a graph whose insertion order breaks topology
        from repro.graph.ir import TaskGraph

        g = TaskGraph("bad")
        g.add_value(ValueNode("x", (1, 4), kind=ValueKind.INPUT))
        g.add_value(ValueNode("a", (1, 4)))
        g.add_value(ValueNode("c", (1, 4)))
        g.add_task(TaskNode("second", "relu", ["a"], ["c"]))
        g.add_task(TaskNode("first", "relu", ["x"], ["a"]))
        g.mark_output("c")
        with pytest.raises(GraphValidationError, match="topological"):
            validate_graph(g)


class TestSerialize:
    def test_roundtrip_small(self, mlp_graph):
        g2 = graph_from_json(graph_to_json(mlp_graph))
        validate_graph(g2)
        assert list(g2.tasks) == list(mlp_graph.tasks)
        assert g2.output_names == mlp_graph.output_names
        for name, v in mlp_graph.values.items():
            v2 = g2.values[name]
            assert (v2.shape, v2.dtype, v2.kind, v2.batched) == (
                v.shape, v.dtype, v.kind, v.batched
            )

    def test_roundtrip_bert(self, tiny_bert):
        g2 = graph_from_json(graph_to_json(tiny_bert))
        validate_graph(g2)
        assert g2.num_parameters() == tiny_bert.num_parameters()
        assert json_stable(tiny_bert)

    def test_attrs_preserved(self, tiny_resnet):
        g2 = graph_from_json(graph_to_json(tiny_resnet))
        assert g2.tasks["stem.conv"].attrs == {"stride": 2, "padding": 3}

    def test_roundtrip_twice_is_identity(self, tiny_bert, tiny_resnet):
        """Attrs must be canonical after ONE round trip: a second trip
        changes nothing (the historical bug: tuple attrs came back as
        lists, so the restored graph serialized differently)."""
        for graph in (tiny_bert, tiny_resnet):
            once = graph_from_json(graph_to_json(graph))
            twice = graph_from_json(graph_to_json(once))
            assert graph_to_json(once) == graph_to_json(twice)
            for name, task in once.tasks.items():
                assert twice.tasks[name].attrs == task.attrs
            assert json_stable(graph)

    def test_tuple_attrs_restored_as_tuples(self, tiny_bert):
        restored = graph_from_json(graph_to_json(tiny_bert))
        attr = restored.tasks["layer0.attn.q_split"].attrs["shape"]
        assert isinstance(attr, tuple)
        assert attr == tiny_bert.tasks["layer0.attn.q_split"].attrs["shape"]

    def test_fingerprint_stable_across_roundtrip(self, tiny_bert):
        from repro.partitioner.deployment import graph_fingerprint

        restored = graph_from_json(graph_to_json(tiny_bert))
        assert graph_fingerprint(restored) == graph_fingerprint(tiny_bert)

    def test_non_serializable_attr_rejected(self, mlp_graph):
        task = next(iter(mlp_graph.tasks))
        mlp_graph.tasks[task].attrs["bad"] = object()
        with pytest.raises(TypeError, match=f"task '{task}' attr 'bad'"):
            graph_to_json(mlp_graph)


def json_stable(graph) -> bool:
    a = graph_to_json(graph)
    b = graph_to_json(graph_from_json(a))
    return a == b
