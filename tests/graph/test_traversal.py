"""Tests for traversal utilities: topo sort, reachability, convexity and
the incremental GroupGraph (including hypothesis property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.traversal import (
    GroupGraph,
    ancestors,
    descendants,
    group_graph,
    is_convex,
    task_predecessors,
    task_successors,
    topo_sort_tasks,
)
from tests.conftest import chain_graph


class TestTopoSort:
    def test_chain(self, mlp_graph):
        order = topo_sort_tasks(mlp_graph)
        pos = {t: i for i, t in enumerate(order)}
        for a, b in mlp_graph.iter_edges():
            assert pos[a] < pos[b]

    def test_diamond(self, diamond_graph):
        order = topo_sort_tasks(diamond_graph)
        pos = {t: i for i, t in enumerate(order)}
        assert pos["fc_in"] < pos["fc_a"] < pos["merge"]
        assert pos["fc_in"] < pos["fc_b"] < pos["merge"]

    def test_insertion_order_is_topological(self, tiny_bert):
        # builder graphs are recorded in execution order, which must be a
        # valid topological order (Kahn may still produce a different one)
        pos = {t: i for i, t in enumerate(tiny_bert.tasks)}
        for a, b in tiny_bert.iter_edges():
            assert pos[a] < pos[b]
        assert sorted(topo_sort_tasks(tiny_bert)) == sorted(tiny_bert.tasks)


class TestReachability:
    def test_descendants(self, diamond_graph):
        d = descendants(diamond_graph, ["fc_a"])
        assert "merge" in d and "fc_out" in d and "loss" in d
        assert "fc_b" not in d and "fc_in" not in d

    def test_ancestors(self, diamond_graph):
        a = ancestors(diamond_graph, ["merge"])
        assert {"fc_in", "fc_a", "fc_b", "act_a", "act_b"} <= a
        assert "fc_out" not in a

    def test_succ_pred_consistency(self, diamond_graph):
        succ = task_successors(diamond_graph)
        pred = task_predecessors(diamond_graph)
        for a, bs in succ.items():
            for b in bs:
                assert a in pred[b]


class TestConvexity:
    def test_contiguous_chain_is_convex(self, mlp_graph):
        tasks = list(mlp_graph.tasks)
        for i in range(len(tasks)):
            for j in range(i + 1, len(tasks) + 1):
                assert is_convex(mlp_graph, tasks[i:j])

    def test_gap_in_chain_not_convex(self, mlp_graph):
        tasks = list(mlp_graph.tasks)
        assert not is_convex(mlp_graph, [tasks[0], tasks[2]])

    def test_diamond_branch_convex(self, diamond_graph):
        assert is_convex(diamond_graph, ["fc_a", "act_a"])
        assert is_convex(diamond_graph, ["fc_a", "act_a", "fc_b", "act_b", "merge"])

    def test_diamond_skip_not_convex(self, diamond_graph):
        # fc_in -> fc_out without the branches: paths leave and re-enter
        assert not is_convex(diamond_graph, ["fc_in", "merge"])

    def test_empty_and_full_are_convex(self, diamond_graph):
        assert is_convex(diamond_graph, [])
        assert is_convex(diamond_graph, list(diamond_graph.tasks))


class TestGroupGraph:
    def _line(self, n=4):
        return GroupGraph(range(n), [(i, i + 1) for i in range(n - 1)])

    def test_adjacent(self):
        gg = self._line()
        assert gg.adjacent(0, 1) and gg.adjacent(1, 0)
        assert not gg.adjacent(0, 2)

    def test_can_merge_chain(self):
        gg = self._line()
        assert gg.can_merge(0, 1)
        assert not gg.can_merge(0, 2)  # not adjacent

    def test_cannot_merge_across_path(self):
        # 0 -> 1 -> 2 and direct 0 -> 2: merging 0,2 leaves 1 inside a path
        gg = GroupGraph(range(3), [(0, 1), (1, 2), (0, 2)])
        assert not gg.can_merge(0, 2)
        assert gg.can_merge(0, 1)

    def test_merge_updates_adjacency(self):
        gg = self._line(4)
        gg.merge(1, 2)
        assert gg.adjacent(0, 1)
        assert gg.adjacent(1, 3)
        assert 2 not in gg.succ

    def test_merge_self_rejected(self):
        gg = self._line()
        with pytest.raises(ValueError):
            gg.merge(1, 1)

    def test_topo_order(self):
        gg = GroupGraph(range(4), [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = gg.topo_order()
        pos = {n: i for i, n in enumerate(order)}
        assert pos[0] < pos[1] < pos[3]
        assert pos[0] < pos[2] < pos[3]

    def test_group_graph_from_partition(self, diamond_graph):
        groups = [
            frozenset({"fc_in"}),
            frozenset({"fc_a", "act_a"}),
            frozenset({"fc_b", "act_b"}),
            frozenset({"merge", "fc_out", "loss"}),
        ]
        gg = group_graph(diamond_graph, groups)
        assert gg.adjacent(0, 1) and gg.adjacent(0, 2)
        assert gg.adjacent(1, 3) and gg.adjacent(2, 3)
        assert not gg.adjacent(1, 2)

    def test_group_graph_rejects_overlap(self, diamond_graph):
        with pytest.raises(ValueError, match="two groups"):
            group_graph(
                diamond_graph,
                [frozenset({"fc_in"}), frozenset({"fc_in", "fc_a"})],
            )


@st.composite
def random_dag(draw):
    """A random DAG over n nodes with edges i -> j only for i < j."""
    n = draw(st.integers(min_value=2, max_value=9))
    edges = []
    for j in range(1, n):
        # ensure connectivity-ish: at least one incoming edge
        preds = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                min_size=1, max_size=min(3, j), unique=True,
            )
        )
        edges.extend((p, j) for p in preds)
    return n, edges


@settings(max_examples=60, deadline=None)
@given(random_dag(), st.data())
def test_can_merge_preserves_acyclicity(dag, data):
    """Property: a GroupGraph merge allowed by can_merge never creates a
    cycle (topo_order still succeeds); a disallowed adjacent merge would."""
    n, edges = dag
    gg = GroupGraph(range(n), edges)
    a = data.draw(st.integers(min_value=0, max_value=n - 1))
    candidates = sorted(gg.succ[a] | gg.pred[a])
    if not candidates:
        return
    b = data.draw(st.sampled_from(candidates))
    if gg.can_merge(a, b):
        gg.merge(a, b)
        gg.topo_order()  # must not raise


def _reachable_brute(gg, src, dst):
    """Unpruned DFS oracle for ``_reachable_avoiding_edge``."""
    stack = [s for s in gg.succ[src] if s != dst]
    seen = set(stack)
    while stack:
        n = stack.pop()
        if n == dst:
            return True
        for s in gg.succ[n]:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return False


@settings(max_examples=60, deadline=None)
@given(random_dag(), st.data())
def test_level_pruned_reachability_matches_unpruned(dag, data):
    """Property: through an arbitrary merge sequence, the level function
    keeps its per-edge invariant and the pruned reachability check gives
    the same answer as an unpruned DFS for every adjacent pair."""
    n, edges = dag
    gg = GroupGraph(range(n), edges)
    for _ in range(data.draw(st.integers(min_value=0, max_value=n - 1))):
        pairs = [
            (a, b)
            for a in gg.nodes()
            for b in sorted(gg.succ[a])
            if gg.can_merge(a, b)
        ]
        if not pairs:
            break
        gg.merge(*data.draw(st.sampled_from(pairs)))
    assert gg._level is not None
    for a in gg.nodes():
        for b in sorted(gg.succ[a]):
            assert gg._level[a] < gg._level[b]
            assert gg._reachable_avoiding_edge(a, b) == _reachable_brute(
                gg, a, b
            )


def test_cyclic_input_disables_pruning_not_reachability():
    """A cyclic input (callers are expected to avoid it, but nothing
    enforces that at construction) falls back to the unpruned search."""
    gg = GroupGraph(range(3), [(0, 1), (1, 2), (2, 0)])
    assert gg._level is None
    assert gg._reachable_avoiding_edge(0, 2)      # 0 -> 1 -> 2
    # the only 0 -> 1 path is the direct edge, which the query excludes
    assert not gg._reachable_avoiding_edge(0, 1)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.data())
def test_convexity_matches_interval_property_on_chains(n, data):
    """Property: on a pure chain, a task subset is convex iff it is a
    contiguous interval of the chain order."""
    g = chain_graph(n_layers=n, width=4)
    tasks = list(g.tasks)
    idx = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(tasks) - 1),
            min_size=1, max_size=len(tasks), unique=True,
        )
    )
    subset = [tasks[i] for i in sorted(idx)]
    contiguous = sorted(idx) == list(range(min(idx), max(idx) + 1))
    assert is_convex(g, subset) == contiguous
