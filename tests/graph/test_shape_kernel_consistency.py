"""Consistency property: for every operator, the registry's static shape
inference must match the shape the runtime kernel actually produces.

This is the contract that keeps the profiler (which reasons statically)
and the executor (which computes) describing the same computation; a
mismatch would silently corrupt both memory estimates and training.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ops import registry
from repro.runtime import tensor as kernels

RNG = np.random.default_rng(11)


def _check(op, arrays, attrs=None):
    attrs = dict(attrs or {})
    inferred = registry.infer_shapes(op, [a.shape for a in arrays], attrs)
    out = kernels.forward_kernel(op)(*arrays, attrs)
    assert out.shape == tuple(inferred[0]), (
        f"{op}: inferred {inferred[0]} but kernel produced {out.shape}"
    )


small = st.integers(min_value=1, max_value=6)


class TestStaticVsRuntime:
    @settings(max_examples=20, deadline=None)
    @given(m=small, k=small, n=small)
    def test_matmul(self, m, k, n):
        _check("matmul", [RNG.standard_normal((m, k)),
                          RNG.standard_normal((k, n))])

    @settings(max_examples=15, deadline=None)
    @given(b=small, s=small, din=small, dout=small)
    def test_linear(self, b, s, din, dout):
        _check("linear", [
            RNG.standard_normal((b, s, din)),
            RNG.standard_normal((dout, din)),
            RNG.standard_normal((dout,)),
        ])

    @settings(max_examples=15, deadline=None)
    @given(b=small, h=small)
    def test_elementwise_broadcast(self, b, h):
        _check("add", [RNG.standard_normal((b, 3, h)),
                       RNG.standard_normal((h,))])
        _check("mul", [RNG.standard_normal((b, 1, h)),
                       RNG.standard_normal((1, 3, 1))])

    @pytest.mark.parametrize(
        "op", ["relu", "gelu", "tanh", "sigmoid", "softmax", "dropout",
               "identity", "neg"],
    )
    def test_unary(self, op):
        _check(op, [RNG.standard_normal((2, 3, 4))])

    def test_layernorm(self):
        _check("layernorm", [RNG.standard_normal((2, 5, 8)),
                             RNG.standard_normal((8,)),
                             RNG.standard_normal((8,))])

    @settings(max_examples=10, deadline=None)
    @given(a=small, b=small, c=small)
    def test_transpose(self, a, b, c):
        x = RNG.standard_normal((a, b, c))
        for perm in [(0, 1, 2), (2, 1, 0), (1, 0, 2), (0, 2, 1)]:
            _check("transpose", [x], {"perm": perm})

    def test_reshape(self):
        x = RNG.standard_normal((2, 3, 4))
        _check("reshape", [x], {"shape": (2, 12), "_batched": False})
        _check("reshape", [x], {"shape": (2, 2, 6), "_batched": False})

    def test_flatten_concat_slice(self):
        _check("flatten", [RNG.standard_normal((2, 3, 4, 5))])
        _check("concat", [RNG.standard_normal((2, 3)),
                          RNG.standard_normal((2, 5))], {"axis": 1})
        _check("slice_rows", [RNG.standard_normal((2, 6, 3))],
               {"start": 1, "stop": 4})

    @settings(max_examples=10, deadline=None)
    @given(b=small, s=small)
    def test_embedding(self, b, s):
        ids = RNG.integers(0, 7, (b, s))
        _check("embedding", [ids, RNG.standard_normal((7, 4))])

    def test_losses(self):
        logits = RNG.standard_normal((3, 5))
        targets = RNG.integers(0, 5, (3,))
        _check("cross_entropy", [logits, targets])
        _check("mse_loss", [RNG.standard_normal((3, 4)),
                            RNG.standard_normal((3, 4))])
        _check("reduce_mean", [RNG.standard_normal((3, 4))])

    @settings(max_examples=12, deadline=None)
    @given(
        cin=st.integers(min_value=1, max_value=4),
        cout=st.integers(min_value=1, max_value=4),
        size=st.integers(min_value=5, max_value=10),
        stride=st.integers(min_value=1, max_value=2),
        pad=st.integers(min_value=0, max_value=1),
    )
    def test_conv2d(self, cin, cout, size, stride, pad):
        kernel = 3
        if size + 2 * pad < kernel:
            return
        _check(
            "conv2d",
            [RNG.standard_normal((2, cin, size, size)),
             RNG.standard_normal((cout, cin, kernel, kernel))],
            {"stride": stride, "padding": pad},
        )

    def test_pooling_and_norm(self):
        x = RNG.standard_normal((2, 3, 8, 8))
        _check("batchnorm2d", [x, RNG.standard_normal(3),
                               RNG.standard_normal(3)])
        _check("maxpool2d", [x], {"kernel": 3, "stride": 2, "padding": 1})
        _check("global_avgpool", [x])

    def test_scale(self):
        _check("scale", [RNG.standard_normal((3, 3))], {"factor": 0.5})
