"""Exporter contracts: Perfetto/Chrome-trace schema, timeline round-trip,
JSON-lines format."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    spans_to_jsonl,
    spans_to_trace_events,
    timeline_to_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.pipeline.timeline import build_sync_timeline


def make_tracer():
    tracer = Tracer()
    with tracer.span("plan", category="planner.pass", status="ok"):
        with tracer.span("dp.form_stage_dp", category="partitioner.dp", S=2):
            pass
    return tracer


class TestChromeTraceSchema:
    def test_complete_events_have_required_fields(self):
        doc = chrome_trace(tracer=make_tracer())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for e in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}

    def test_document_is_json_loadable(self, tmp_path):
        timeline = build_sync_timeline([1.0, 2.0], [2.0, 4.0], 3)
        metrics = MetricsRegistry()
        metrics.counter("dp.calls").inc(5)
        path = tmp_path / "trace.json"
        write_chrome_trace(
            str(path), tracer=make_tracer(), timeline=timeline,
            metrics=metrics,
        )
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metrics"]["dp.calls"] == 5
        for e in doc["traceEvents"]:
            assert e["ph"] in ("X", "M")
            if e["ph"] == "X":
                assert "ts" in e and "dur" in e

    def test_planner_and_pipeline_use_distinct_pids(self):
        timeline = build_sync_timeline([1.0], [2.0], 2)
        doc = chrome_trace(tracer=make_tracer(), timeline=timeline)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}

    def test_parent_and_span_ids_in_args(self):
        (event,) = [
            e for e in spans_to_trace_events(make_tracer().spans())
            if e.get("ph") == "X" and e["name"] == "dp.form_stage_dp"
        ]
        assert event["args"]["S"] == 2
        assert "span_id" in event["args"]
        assert "parent_id" in event["args"]

    def test_empty_sources(self):
        assert spans_to_trace_events([]) == []
        doc = chrome_trace()
        assert doc["traceEvents"] == []


class TestTimelineRoundTrip:
    def test_dur_sum_per_track_equals_stage_busy_time(self):
        timeline = build_sync_timeline(
            [1.0, 1.5, 0.5], [2.0, 3.0, 1.0], 4
        )
        events = timeline_to_trace_events(timeline)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3 * 4 * 2  # stages * microbatches * {F,B}
        for s in range(timeline.num_stages):
            dur_us = sum(e["dur"] for e in complete if e["tid"] == s)
            assert dur_us == timeline.stage_busy_time(s) * 1e6

    def test_one_thread_name_track_per_stage(self):
        timeline = build_sync_timeline([1.0, 2.0], [2.0, 4.0], 2)
        events = timeline_to_trace_events(timeline)
        names = {
            e["tid"]: e["args"]["name"]
            for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "stage 0", 1: "stage 1"}

    def test_phase_category_split(self):
        timeline = build_sync_timeline([1.0], [2.0], 2)
        cats = {e["cat"] for e in timeline_to_trace_events(timeline)
                if e["ph"] == "X"}
        assert cats == {"forward", "backward"}

    def test_timeline_method_delegates(self):
        timeline = build_sync_timeline([1.0, 2.0], [2.0, 4.0], 2)
        assert timeline.to_trace_events() == timeline_to_trace_events(timeline)


class TestThreadTracks:
    def test_spans_from_two_threads_get_two_tracks(self):
        import threading

        tracer = Tracer()
        with tracer.span("main-span"):
            pass
        t = threading.Thread(
            target=lambda: tracer.add_span("worker-span", duration=0.001)
        )
        t.start()
        t.join()
        events = spans_to_trace_events(tracer.spans())
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert tids == {1, 2}
        labels = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert labels == {"main", "worker-1"}


class TestJsonl:
    def test_line_format(self, tmp_path):
        tracer = make_tracer()
        metrics = MetricsRegistry()
        metrics.counter("dp.calls").inc(3)
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), tracer, metrics)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [ln["type"] for ln in lines] == ["span", "span", "metrics"]
        assert lines[-1]["values"] == {"dp.calls": 3}
        assert lines[0]["name"] in ("plan", "dp.form_stage_dp")

    def test_empty(self):
        assert spans_to_jsonl([]) == ""
