"""MetricsRegistry: counters, gauges, histograms, naming, snapshots."""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import MetricsRegistry, point_name


class TestCounter:
    def test_inc_defaults_and_amounts(self):
        reg = MetricsRegistry()
        c = reg.counter("dp.calls")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert reg.counter("dp.calls") is c  # get-or-create

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_thread_safe_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: c.inc(), range(2000)))
        assert c.value == 2000


class TestGaugeAndHistogram:
    def test_gauge_keeps_last_value(self):
        g = MetricsRegistry().gauge("stage.bubble_frac")
        g.set(0.5)
        g.set(0.31)
        assert g.value == 0.31

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("dp.states_per_call")
        for v in (10, 30, 20):
            h.observe(v)
        assert h.mean == 20
        assert h.summary() == {
            "count": 3, "total": 60.0, "min": 10.0, "max": 30.0, "mean": 20.0,
        }

    def test_empty_histogram_summary(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean == 0.0
        assert h.summary()["count"] == 0


class TestRegistry:
    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_get_contains_len(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        assert "missing" not in reg
        reg.counter("a")
        reg.gauge("b")
        assert "a" in reg and len(reg) == 2
        assert reg.get("a").value == 0

    def test_snapshot_is_json_safe_and_ordered(self):
        reg = MetricsRegistry()
        reg.counter("z.first").inc(3)
        reg.gauge("a.second").set(1.5)
        reg.histogram("m.third").observe(7)
        snap = reg.snapshot()
        # insertion order, not alphabetical
        assert list(snap) == ["z.first", "a.second", "m.third"]
        assert snap["z.first"] == 3
        assert snap["a.second"] == 1.5
        assert snap["m.third"]["count"] == 1
        json.dumps(snap)  # must not raise


class TestPointName:
    def test_labels_sorted_for_stability(self):
        assert point_name("dp.states_evaluated", S=4, MB=8) == \
            "dp.states_evaluated[MB=8,S=4]"
        assert point_name("dp.states_evaluated", MB=8, S=4) == \
            point_name("dp.states_evaluated", S=4, MB=8)

    def test_no_labels(self):
        assert point_name("x") == "x[]"
