"""Tracer behaviour: nesting, thread-safety, disabled mode."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import NULL_SPAN, Span, Tracer


class TestSpanNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sib:
                assert sib.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [s.name for s in tracer.spans()]
        # spans are recorded on completion: children close first
        assert names == ["inner", "sibling", "outer"]

    def test_durations_are_monotonic_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.start >= outer.start
        assert inner.end <= outer.end + 1e-9
        assert outer.duration >= inner.duration >= 0.0

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("a") as a:
            assert tracer.current_span() is a
        assert tracer.current_span() is None

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root_id = root.span_id
        with tracer.span("other"):
            with tracer.span("child", parent_id=root_id) as child:
                assert child.parent_id == root_id

    def test_attrs_at_open_and_set(self):
        tracer = Tracer()
        with tracer.span("s", category="test", k=1) as sp:
            sp.set(extra="v").set(k=2)
        (span,) = tracer.spans()
        assert span.attrs == {"k": 2, "extra": "v"}
        assert span.category == "test"

    def test_add_span_backdates(self):
        tracer = Tracer()
        span = tracer.add_span("measured", duration=0.25)
        assert span.duration == 0.25
        assert abs(span.end - span.start - 0.25) < 1e-12

    def test_exception_still_records(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans()] == ["boom"]
        assert tracer.current_span() is None


class TestThreadSafety:
    def test_parallel_spans_keep_per_thread_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(i):
            with tracer.span(f"outer-{i}") as outer:
                barrier.wait(timeout=10)
                with tracer.span(f"inner-{i}") as inner:
                    assert inner.parent_id == outer.span_id
                    assert inner.thread_id == threading.get_ident()
            return outer.span_id

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(4)))

        spans = tracer.spans()
        assert len(spans) == 8
        by_name = {s.name: s for s in spans}
        for i in range(4):
            inner, outer = by_name[f"inner-{i}"], by_name[f"outer-{i}"]
            # nesting never crosses threads
            assert inner.parent_id == outer.span_id
            assert inner.thread_id == outer.thread_id
        assert len({s.span_id for s in spans}) == 8  # ids unique

    def test_concurrent_add_span(self):
        tracer = Tracer()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(
                lambda i: tracer.add_span(f"s{i}", duration=0.001),
                range(200),
            ))
        assert len(tracer) == 200
        assert len({s.span_id for s in tracer.spans()}) == 200


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as sp:
            assert sp is NULL_SPAN
            sp.set(anything="goes")  # no-op, no error
        assert tracer.add_span("b", duration=1.0) is NULL_SPAN
        assert len(tracer) == 0

    def test_span_as_dict_roundtrip(self):
        span = Span("n", category="c", start=1.0, duration=2.0,
                    attrs={"a": 1}, span_id=7, parent_id=3, thread_id=11)
        doc = span.as_dict()
        assert doc == {
            "name": "n", "category": "c", "start": 1.0, "duration": 2.0,
            "span_id": 7, "parent_id": 3, "thread_id": 11,
            "attrs": {"a": 1},
        }

    def test_category_filter_and_clear(self):
        tracer = Tracer()
        tracer.add_span("a", category="x")
        tracer.add_span("b", category="y")
        assert [s.name for s in tracer.spans("x")] == ["a"]
        tracer.clear()
        assert len(tracer) == 0
