"""Unit tests for the plan-integrity checker (``repro.verify``).

Strategy: plan a real model with the real planner, assert the fresh plan
verifies cleanly, then tamper with one aspect at a time and assert the
checker pins the damage to the right invariant family -- collecting ALL
violations instead of stopping at the first.
"""

import dataclasses

import pytest

from repro.hardware import paper_cluster, tiny_cluster
from repro.models.random_dag import build_random_dag
from repro.partitioner import auto_partition
from repro.verify import (
    PlanVerificationError,
    check_plan,
    verify_plan,
)


@pytest.fixture(scope="module")
def pipelined():
    """A REAL multi-stage plan: memory-starved devices force a pipeline
    split, exercising checkpointing and the differential checks."""
    cluster = tiny_cluster(num_nodes=1, devices_per_node=4,
                           memory_bytes=256 * 1024)
    for seed in range(8):
        graph = build_random_dag(seed=seed, num_nodes=14, width=64)
        plan = auto_partition(graph, cluster, 32, num_blocks=8)
        if plan.num_stages >= 2:
            return graph, cluster, plan
    raise AssertionError("no seed in 0..7 produced a multi-stage plan")


@pytest.fixture(scope="module")
def replicated():
    """A single-stage data-parallel plan on the paper cluster."""
    from repro.models import BertConfig, build_bert

    graph = build_bert(
        BertConfig(hidden_size=32, num_layers=2, num_heads=4, seq_len=16,
                   vocab_size=101)
    )
    cluster = paper_cluster()
    plan = auto_partition(graph, cluster, 64)
    return graph, cluster, plan


def violations_of(report, invariant):
    return [v for v in report.violations if v.invariant == invariant]


def retask(plan, stage_idx, tasks):
    """Copy ``plan`` with one stage's task tuple replaced."""
    stages = list(plan.stages)
    stages[stage_idx] = dataclasses.replace(stages[stage_idx], tasks=tasks)
    return dataclasses.replace(plan, stages=stages)


class TestCleanPlans:
    def test_pipelined_plan_verifies(self, pipelined):
        graph, cluster, plan = pipelined
        report = verify_plan(plan, graph, cluster)
        assert report.ok
        assert report.invariants_checked > len(graph.tasks)
        assert report.stats["sim_rel_err"] <= 1e-6
        assert report.stats["max_mem_rel_err"] <= 1e-6

    def test_replicated_plan_verifies(self, replicated):
        graph, cluster, plan = replicated
        report = verify_plan(plan, graph, cluster)
        assert report.ok

    def test_cluster_defaults_to_plans(self, replicated):
        graph, _, plan = replicated
        assert check_plan(plan, graph).ok


class TestCoverage:
    def test_dropped_stage(self, pipelined):
        graph, cluster, plan = pipelined
        broken = dataclasses.replace(plan, stages=list(plan.stages[:-1]))
        report = check_plan(broken, graph, cluster)
        missing = violations_of(report, "coverage")
        assert missing, "dropping a stage must orphan its tasks"
        assert any("not assigned to any stage" in v.message for v in missing)

    def test_duplicated_task(self, pipelined):
        from repro.partitioner.atomic import classify_tasks

        graph, cluster, plan = pipelined
        # graft a stage-1 NON-CONSTANT task into stage 0 as well (cloning
        # a constant task would be legal)
        non_constant = classify_tasks(graph)
        stolen = next(
            t for t in plan.stages[1].tasks if non_constant[t]
        )
        broken = retask(plan, 0, plan.stages[0].tasks + (stolen,))
        report = check_plan(broken, graph, cluster)
        assert any(
            "exactly one" in v.message
            for v in violations_of(report, "coverage")
        )

    def test_task_listed_twice_in_one_stage(self, pipelined):
        graph, cluster, plan = pipelined
        t = plan.stages[0].tasks[0]
        broken = retask(plan, 0, plan.stages[0].tasks + (t,))
        report = check_plan(broken, graph, cluster)
        assert any(
            "twice" in v.message for v in violations_of(report, "coverage")
        )

    def test_unknown_task(self, pipelined):
        graph, cluster, plan = pipelined
        broken = retask(plan, 0, plan.stages[0].tasks + ("ghost_task",))
        report = check_plan(broken, graph, cluster)
        assert any(
            "unknown task" in v.message
            for v in violations_of(report, "coverage")
        )

    def test_empty_plan(self, pipelined):
        graph, cluster, plan = pipelined
        report = check_plan(
            dataclasses.replace(plan, stages=[]), graph, cluster
        )
        assert any(
            "no stages" in v.message
            for v in violations_of(report, "coverage")
        )


class TestTopology:
    def test_swapped_stages_create_backward_edges(self, pipelined):
        graph, cluster, plan = pipelined
        stages = list(plan.stages)
        s0, s1 = stages[0], stages[1]
        stages[0] = dataclasses.replace(s0, tasks=s1.tasks)
        stages[1] = dataclasses.replace(s1, tasks=s0.tasks)
        report = check_plan(
            dataclasses.replace(plan, stages=stages), graph, cluster
        )
        assert any(
            "backward" in v.message
            for v in violations_of(report, "topology")
        )

    def test_broken_block_chain(self, pipelined):
        graph, cluster, plan = pipelined
        stages = list(plan.stages)
        lo, hi = stages[0].block_range
        stages[0] = dataclasses.replace(stages[0], block_range=(lo + 1, hi))
        report = check_plan(
            dataclasses.replace(plan, stages=stages), graph, cluster
        )
        assert any(
            "contiguously" in v.message
            for v in violations_of(report, "topology")
        )


class TestDevicesAndDivisibility:
    def test_device_overflow(self, replicated):
        graph, cluster, plan = replicated
        broken = dataclasses.replace(
            plan, replica_factor=plan.replica_factor * 100
        )
        report = check_plan(broken, graph, cluster)
        assert any(
            "cluster has" in v.message
            for v in violations_of(report, "devices")
        )

    def test_zero_replica_factor(self, replicated):
        graph, cluster, plan = replicated
        report = check_plan(
            dataclasses.replace(plan, replica_factor=0), graph, cluster
        )
        assert violations_of(report, "devices")

    def test_microbatch_size_mismatch(self, pipelined):
        graph, cluster, plan = pipelined
        stages = list(plan.stages)
        stages[0] = dataclasses.replace(
            stages[0], microbatch_size=stages[0].microbatch_size + 1
        )
        report = check_plan(
            dataclasses.replace(plan, stages=stages), graph, cluster
        )
        assert any(
            "microbatch_size" in v.message
            for v in violations_of(report, "divisibility")
        )

    def test_zero_microbatches(self, pipelined):
        graph, cluster, plan = pipelined
        report = check_plan(
            dataclasses.replace(plan, num_microbatches=0), graph, cluster
        )
        assert violations_of(report, "divisibility")


class TestMemoryAndDifferential:
    def test_over_memory_stage(self, pipelined):
        graph, cluster, plan = pipelined
        stages = list(plan.stages)
        prof = dataclasses.replace(
            stages[0].profile, memory=stages[0].profile.memory * 1e4
        )
        stages[0] = dataclasses.replace(stages[0], profile=prof)
        report = check_plan(
            dataclasses.replace(plan, stages=stages), graph, cluster
        )
        mem = violations_of(report, "memory")
        assert any("usable device memory" in v.message for v in mem)
        assert any("re-deriving" in v.message for v in mem)

    def test_tampered_stage_time(self, pipelined):
        graph, cluster, plan = pipelined
        stages = list(plan.stages)
        prof = dataclasses.replace(
            stages[0].profile, time_fwd=stages[0].profile.time_fwd * 3.0
        )
        stages[0] = dataclasses.replace(stages[0], profile=prof)
        report = check_plan(
            dataclasses.replace(plan, stages=stages), graph, cluster
        )
        diff = violations_of(report, "differential")
        # both layers catch it: profile re-derivation and re-simulation
        # against the recorded pipeline makespan
        assert any("re-derived" in v.message for v in diff)
        assert any("re-simulating" in v.message for v in diff)

    def test_dp_estimate_disagreement(self, pipelined):
        graph, cluster, plan = pipelined
        report = check_plan(
            plan, graph, cluster,
            expected_iteration_time=plan.diagnostics.pipeline_time * 2.0,
        )
        assert any(
            "DP estimated" in v.message
            for v in violations_of(report, "differential")
        )


class TestCollectThenRaise:
    def test_all_violations_reported(self, pipelined):
        """Two independent tamperings -> one error listing both."""
        graph, cluster, plan = pipelined
        stages = list(plan.stages)
        prof = dataclasses.replace(
            stages[0].profile, memory=stages[0].profile.memory * 1e4
        )
        stages[0] = dataclasses.replace(stages[0], profile=prof)
        broken = dataclasses.replace(
            plan, stages=stages, num_microbatches=plan.num_microbatches + 1
        )
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(broken, graph, cluster)
        err = exc_info.value
        families = {v.invariant for v in err.violations}
        assert "memory" in families
        assert "divisibility" in families
        # the message renders every violation, one per line
        assert str(err).count("- [") == len(err.violations)
        assert isinstance(err, ValueError)  # cache loads treat it as a miss

    def test_verify_plan_returns_report_when_clean(self, replicated):
        graph, cluster, plan = replicated
        assert verify_plan(plan, graph, cluster).ok
