"""The randomized differential harness: 25 seeded random DAGs x 3
cluster presets, full planner, every emitted plan verified."""

from repro.verify.harness import default_clusters, main, run_harness


class TestHarness:
    def test_full_seed_matrix_has_zero_violations(self):
        result = run_harness(seeds=range(25))
        assert len(result.cases) == 25 * len(default_clusters())
        assert result.total_violations == 0, [
            str(v) for c in result.cases for v in c.violations
        ]
        # the matrix must actually exercise the planner: most
        # combinations feasible, and the memory-starved preset forcing
        # genuine multi-stage pipelines
        assert result.num_feasible >= 60
        assert any(c.num_stages >= 2 for c in result.cases)

    def test_cli_entry(self, capsys):
        assert main(["--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "seed   0" in out
