"""The randomized differential harness: 25 seeded random DAGs x 3
cluster presets x 2 communication models, full planner, every emitted
plan verified."""

from repro.verify.harness import default_clusters, main, run_harness


class TestHarness:
    def test_full_seed_matrix_has_zero_violations(self):
        result = run_harness(seeds=range(25))
        assert len(result.cases) == 25 * len(default_clusters()) * 2
        assert result.total_violations == 0, [
            str(v) for c in result.cases for v in c.violations
        ]
        # the matrix must actually exercise the planner: most
        # combinations feasible, and the memory-starved preset forcing
        # genuine multi-stage pipelines
        assert result.num_feasible >= 120
        assert any(c.num_stages >= 2 for c in result.cases)
        # both communication models appear, and the topology column is
        # held to the same zero-violation bar (asserted above) with the
        # same feasibility profile as flat
        by_model = {}
        for case in result.cases:
            by_model.setdefault(case.comm_model, []).append(case)
        assert set(by_model) == {"flat", "topology"}
        flat_feasible = {
            (c.seed, c.cluster_name) for c in by_model["flat"] if c.feasible
        }
        topo_feasible = {
            (c.seed, c.cluster_name) for c in by_model["topology"] if c.feasible
        }
        assert flat_feasible == topo_feasible

    def test_inference_mode_column_has_zero_violations(self):
        result = run_harness(
            seeds=range(5),
            comm_models=("flat",),
            modes=("training", "inference"),
        )
        assert len(result.cases) == 5 * len(default_clusters()) * 2
        assert result.total_violations == 0, [
            str(v) for c in result.cases for v in c.violations
        ]
        by_mode = {}
        for case in result.cases:
            by_mode.setdefault(case.mode, []).append(case)
        assert set(by_mode) == {"training", "inference"}
        assert any(c.feasible for c in by_mode["inference"])
        # forward-only plans can only get *more* feasible: dropping the
        # backward/optimizer memory never loses a feasible combination
        train_feasible = {
            (c.seed, c.cluster_name)
            for c in by_mode["training"] if c.feasible
        }
        inf_feasible = {
            (c.seed, c.cluster_name)
            for c in by_mode["inference"] if c.feasible
        }
        assert train_feasible <= inf_feasible

    def test_cli_entry(self, capsys):
        assert main(["--seeds", "2", "--comm-models", "flat",
                     "--modes", "training"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "seed   0" in out

    def test_cli_entry_covers_inference_by_default(self, capsys):
        assert main(["--seeds", "1", "--comm-models", "flat"]) == 0
        out = capsys.readouterr().out
        assert "/inference" in out
        assert "0 violation(s)" in out
