"""The verifier's ``inference`` invariant family: forward-only plans
must carry zero backward time, zero gradient-sync / optimizer cost, and
an iteration time equal to the pipeline makespan; the ``comm``
differential is skipped (there is nothing to re-derive)."""

import dataclasses

import pytest

from repro.hardware.presets import tiny_cluster
from repro.models.random_dag import build_random_dag
from repro.partitioner import auto_partition
from repro.verify import PlanVerificationError, verify_plan
from repro.verify.plan_checks import check_plan


@pytest.fixture(scope="module")
def graph():
    return build_random_dag(seed=0, num_nodes=14, width=64)


@pytest.fixture(scope="module")
def cluster():
    return tiny_cluster(num_nodes=1, devices_per_node=4)


@pytest.fixture(scope="module")
def plan(graph, cluster):
    return auto_partition(
        graph, cluster, batch_size=32, num_blocks=8,
        verify=False, mode="inference",
    )


class TestInferenceFamily:
    def test_clean_inference_plan_passes(self, plan, graph, cluster):
        report = check_plan(plan, graph, cluster)
        assert not report.violations, [str(v) for v in report.violations]
        assert report.invariants_checked > 0

    def test_comm_family_skipped(self, plan, graph, cluster):
        report = check_plan(plan, graph, cluster)
        assert "comm_rel_err" not in report.stats

    def test_nonzero_backward_time_is_flagged(self, plan, graph, cluster):
        tampered = dataclasses.replace(
            plan,
            stages=[
                dataclasses.replace(
                    s,
                    profile=dataclasses.replace(s.profile, time_bwd=1e-3),
                )
                for s in plan.stages
            ],
        )
        report = check_plan(tampered, graph, cluster)
        families = {v.invariant for v in report.violations}
        assert "inference" in families

    def test_nonzero_allreduce_is_flagged(self, plan, graph, cluster):
        tampered = dataclasses.replace(plan)
        tampered.diagnostics = dataclasses.replace(
            plan.diagnostics, allreduce_time=0.5
        )
        report = check_plan(tampered, graph, cluster)
        assert any(
            v.invariant == "inference" and "allreduce" in v.message
            for v in report.violations
        )

    def test_verify_plan_raises_on_violation(self, plan, graph, cluster):
        tampered = dataclasses.replace(
            plan,
            stages=[
                dataclasses.replace(
                    s,
                    profile=dataclasses.replace(s.profile, time_bwd=1e-3),
                )
                for s in plan.stages
            ],
        )
        with pytest.raises(PlanVerificationError):
            verify_plan(tampered, graph, cluster)

    def test_training_plan_unaffected(self, graph, cluster):
        training = auto_partition(
            graph, cluster, batch_size=32, num_blocks=8, verify=False
        )
        report = check_plan(training, graph, cluster)
        assert not report.violations
        # the comm differential still runs for training plans
        assert "comm_rel_err" in report.stats
