"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "RaNNC" in out and "Megatron-LM" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--stages", "2", "--microbatches", "3"]) == 0
        out = capsys.readouterr().out
        assert "stage0" in out and "F2" in out and "B0" in out

    def test_partition_bert(self, capsys, tmp_path):
        dep = tmp_path / "dep.json"
        rc = main([
            "partition", "--model", "bert", "--hidden", "1024",
            "--layers", "24", "--nodes", "1", "--batch-size", "64",
            "--save", str(dep),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PartitionPlan" in out
        doc = json.loads(dep.read_text())
        assert doc["version"] == 1
        assert doc["batch_size"] == 64

    def test_partition_resnet(self, capsys):
        rc = main([
            "partition", "--model", "resnet", "--depth", "50",
            "--width-factor", "1", "--nodes", "1", "--batch-size", "32",
        ])
        assert rc == 0
        assert "resnet50x1" in capsys.readouterr().out

    def test_partition_infeasible(self, capsys):
        # a 12.9B model on one node at huge batch without AMP... still
        # feasible in 32GB x8; instead use batch smaller than devices to
        # force an infeasible configuration? batch 1 on 8 devices works
        # (S=8, MB=1). Use batch < stages requirement: batch=1 works too.
        # Infeasibility needs tiny memory, not reachable via CLI flags;
        # so just check a feasible run returns 0.
        rc = main([
            "partition", "--model", "gpt", "--hidden", "768",
            "--layers", "2", "--nodes", "1", "--batch-size", "8",
        ])
        assert rc == 0

    def test_plan_explain(self, capsys):
        rc = main([
            "plan", "--model", "bert", "--hidden", "64", "--layers", "4",
            "--nodes", "1", "--batch-size", "32", "--explain",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PartitionPlan" in out
        assert "stage_search" in out and "coarsen" in out
        assert "ms" in out
        assert "profiler memo hit rate" in out

    def test_plan_cache_roundtrip(self, capsys, tmp_path):
        args = [
            "plan", "--model", "bert", "--hidden", "64", "--layers", "4",
            "--nodes", "1", "--batch-size", "32", "--explain",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "hit=False" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "hit=True" in second
        assert "restored from the deployment cache" in second
        assert "skipped" in second

    def test_verify_roundtrip(self, capsys, tmp_path):
        dep = tmp_path / "dep.json"
        model = ["--model", "bert", "--hidden", "64", "--layers", "4",
                 "--nodes", "1"]
        assert main(["partition", *model, "--batch-size", "32",
                     "--save", str(dep)]) == 0
        capsys.readouterr()

        assert main(["verify", str(dep), *model]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")
        assert "stages=" in out

        doc = json.loads(dep.read_text())
        doc["stages"][0]["profile"]["memory"] *= 1000
        dep.write_text(json.dumps(doc))
        assert main(["verify", str(dep), *model]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "violation(s)" in out
        assert "[memory]" in out

    def test_verify_missing_file(self, capsys, tmp_path):
        assert main(["verify", str(tmp_path / "nope.json")]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_loss_validation(self, capsys):
        assert main(["loss-validation", "--steps", "2"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_ablation_fast(self, capsys):
        assert main(["ablation", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "%" in out or "DNF" in out

    def test_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        rc = main([
            "trace", "--model", "bert", "--hidden", "64", "--layers", "4",
            "--cluster", "v100x8", "--batch-size", "32",
            "--out", str(trace_path), "--jsonl", str(jsonl_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "perfetto" in out

        doc = json.loads(trace_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert "ts" in e and "dur" in e
        # planner spans (pid 1) and pipeline stage tracks (pid 2)
        assert {e["pid"] for e in complete} == {1, 2}
        cats = {e["cat"] for e in complete}
        assert "planner.pass" in cats
        assert "partitioner.dp" in cats
        assert {"forward", "backward"} <= cats
        # DP search counters ride along, incl. per-(S, MB) points
        assert doc["metrics"]["dp.calls"] > 0
        assert any(k.startswith("dp.states_evaluated[") for k in doc["metrics"])

        lines = [json.loads(ln) for ln in jsonl_path.read_text().splitlines()]
        assert lines[-1]["type"] == "metrics"
        assert all(ln["type"] == "span" for ln in lines[:-1])

    def test_trace_default_preset(self, capsys, tmp_path):
        # bert-base / v100x8 is the documented example; keep the batch
        # small so the test stays fast
        trace_path = tmp_path / "trace.json"
        rc = main([
            "trace", "--model", "bert-base", "--cluster", "v100x8",
            "--batch-size", "64", "--out", str(trace_path),
        ])
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        stage_tracks = {
            e["tid"] for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 2
        }
        assert len(stage_tracks) >= 1
