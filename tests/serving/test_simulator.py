"""The discrete-event serving simulator: hand-checkable scenarios on a
synthetic service model, plus an end-to-end run over a real inference
plan."""

import json

import pytest

from repro.hardware import paper_cluster
from repro.models import GPTConfig, build_gpt
from repro.partitioner import auto_partition
from repro.serving.simulator import (
    ServiceModel,
    _simulate,
    simulate_serving,
    write_serving_trace,
)
from repro.serving.workload import Request, poisson_arrivals


def _model(latency=1.0, gap=0.5, capacity=2):
    return ServiceModel(
        latency_s=latency,
        gap_s=gap,
        capacity=capacity,
        num_stages=1,
        num_microbatches=1,
    )


def _reqs(*arrivals):
    return [Request(index=i, arrival=t) for i, t in enumerate(arrivals)]


class TestEventLoop:
    def test_capacity_batch_dispatches_immediately(self):
        # two arrivals fill the batch at t=0.05; latency 1.0
        result = _simulate(_model(), _reqs(0.0, 0.05), 1, max_wait_s=0.2)
        assert len(result.batches) == 1
        batch = result.batches[0]
        assert batch.start == pytest.approx(0.05)
        assert batch.finish == pytest.approx(1.05)
        latencies = [r.latency_s for r in result.requests]
        assert latencies == [pytest.approx(1.05), pytest.approx(1.0)]

    def test_partial_batch_flushes_at_deadline(self):
        result = _simulate(_model(), _reqs(2.0), 1, max_wait_s=0.2)
        assert len(result.batches) == 1
        assert result.batches[0].start == pytest.approx(2.2)
        assert result.requests[0].latency_s == pytest.approx(1.2)

    def test_zero_wait_degenerates_to_per_request_batches(self):
        result = _simulate(_model(), _reqs(0.0, 10.0, 20.0), 1, max_wait_s=0.0)
        assert len(result.batches) == 3
        assert all(b.num_requests == 1 for b in result.batches)

    def test_queueing_behind_busy_replica(self):
        # batch 1 (t=0, t=0.01) starts at 0.01 and occupies the front
        # until 0.51; batch 2 (t=0.1, t=0.11) must wait for the gap
        result = _simulate(
            _model(), _reqs(0.0, 0.01, 0.1, 0.11), 1, max_wait_s=0.2
        )
        assert len(result.batches) == 2
        second = result.batches[1]
        assert second.start == pytest.approx(0.51)  # 0.01 + gap 0.5

    def test_second_replica_absorbs_the_queue(self):
        result = _simulate(
            _model(), _reqs(0.0, 0.01, 0.1, 0.11), 2, max_wait_s=0.2
        )
        second = result.batches[1]
        assert second.replica == 1
        assert second.start == pytest.approx(0.11)  # no queueing

    def test_deterministic(self):
        requests = poisson_arrivals(200.0, 1.0, seed=5)
        a = _simulate(_model(capacity=4), requests, 2, max_wait_s=0.01)
        b = _simulate(_model(capacity=4), requests, 2, max_wait_s=0.01)
        assert a.requests == b.requests
        assert a.batches == b.batches

    def test_every_request_served_exactly_once(self):
        requests = poisson_arrivals(300.0, 1.0, seed=9)
        result = _simulate(_model(capacity=8), requests, 3, max_wait_s=0.005)
        assert sorted(r.index for r in result.requests) == [
            r.index for r in requests
        ]
        assert sum(b.num_requests for b in result.batches) == len(requests)

    def test_metrics_are_consistent(self):
        result = _simulate(_model(), _reqs(0.0, 0.05), 1, max_wait_s=0.2)
        assert result.horizon_s == pytest.approx(1.05)
        assert result.throughput_rps == pytest.approx(2 / 1.05)
        assert result.mean_batch_occupancy == pytest.approx(1.0)
        summary = result.summary()
        assert summary["requests"] == 2
        assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]
        json.dumps(summary)  # JSON-safe


class TestWithRealPlan:
    @pytest.fixture(scope="class")
    def plan(self):
        graph = build_gpt(GPTConfig(
            hidden_size=256, num_layers=4, num_heads=4,
            seq_len=256, vocab_size=8192,
        ))
        return auto_partition(
            graph, paper_cluster(1), batch_size=32, mode="inference"
        )

    def test_requires_inference_plan(self, plan):
        graph = build_gpt(GPTConfig(
            hidden_size=256, num_layers=4, num_heads=4,
            seq_len=256, vocab_size=8192,
        ))
        training = auto_partition(graph, paper_cluster(1), batch_size=32)
        with pytest.raises(ValueError, match="inference"):
            simulate_serving(training, _reqs(0.0))

    def test_service_model_from_plan(self, plan):
        model = ServiceModel.from_plan(plan)
        assert model.latency_s > 0
        assert model.gap_s <= model.latency_s
        assert model.capacity == plan.batch_size // plan.replica_factor

    def test_end_to_end_and_trace_export(self, plan, tmp_path):
        requests = poisson_arrivals(50.0, 1.0, seed=0)
        result = simulate_serving(
            plan, requests, num_replicas=2, max_wait_s=0.01
        )
        assert len(result.requests) == len(requests)
        assert result.latency_percentile_ms(99) > 0
        path = tmp_path / "serving_trace.json"
        count = write_serving_trace(path, result)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count
        names = {e.get("name", "") for e in doc["traceEvents"]}
        assert any(n.startswith("request-") for n in names)
        assert any(n.startswith("batch-") for n in names)
