"""The SLO autoscaler picks the minimum sufficient replica count."""

import pytest

from repro.serving.autoscale import autoscale_replicas
from repro.serving.simulator import ServiceModel, _simulate
from repro.serving.workload import Request


class _FakePlan:
    """Duck-typed plan: just enough for ServiceModel.from_plan."""

    def __init__(self, time_fwd, num_microbatches, batch_size, replica_factor):
        class _Stage:
            def __init__(self, tf):
                self.time_fwd = tf

        self.mode = "inference"
        self.stages = [_Stage(time_fwd)]
        self.num_microbatches = num_microbatches
        self.batch_size = batch_size
        self.replica_factor = replica_factor


def _saturating_workload():
    # back-to-back singleton batches: each occupies a replica front for
    # gap_s = 0.1s, arrivals every 0.05s -> one replica falls behind
    return [Request(index=i, arrival=0.05 * i) for i in range(40)]


def _plan():
    # latency = gap = 0.1s per batch, capacity 1 sample
    return _FakePlan(
        time_fwd=0.1, num_microbatches=1, batch_size=1, replica_factor=1
    )


class TestAutoscale:
    def test_picks_minimum_count_meeting_slo(self):
        decision = autoscale_replicas(
            _plan(), _saturating_workload(), slo_ms=150.0,
            max_replicas=4, max_wait_s=0.0,
        )
        assert decision.met_slo
        assert decision.replicas == 2
        # the sweep stopped at the first sufficient count
        assert [p.replicas for p in decision.sweep] == [1, 2]
        assert decision.sweep[0].p99_ms > 150.0
        assert decision.sweep[1].p99_ms <= 150.0

    def test_adding_replicas_never_hurts_p99(self):
        workload = _saturating_workload()
        p99 = [
            _simulate(
                ServiceModel.from_plan(_plan()), workload, n, 0.0
            ).latency_percentile_ms(99)
            for n in (1, 2, 3, 4)
        ]
        assert p99 == sorted(p99, reverse=True)

    def test_unreachable_slo_reports_not_met(self):
        # the batch service time alone is 100ms > 50ms SLO
        decision = autoscale_replicas(
            _plan(), _saturating_workload(), slo_ms=50.0,
            max_replicas=3, max_wait_s=0.0,
        )
        assert not decision.met_slo
        assert decision.replicas == 3
        assert len(decision.sweep) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            autoscale_replicas(_plan(), [], slo_ms=0.0)
        with pytest.raises(ValueError):
            autoscale_replicas(_plan(), [], slo_ms=1.0, max_replicas=0)
