"""Continuous batcher and least-outstanding-work router."""

import pytest

from repro.serving.batcher import ContinuousBatcher
from repro.serving.router import LeastOutstandingRouter
from repro.serving.workload import Request


def _req(index, arrival, samples=1):
    return Request(index=index, arrival=arrival, samples=samples)


class TestContinuousBatcher:
    def test_capacity_trigger_closes_batch(self):
        batcher = ContinuousBatcher(capacity=2, max_wait_s=1.0)
        assert batcher.offer(_req(0, 0.0), 0.0) is None
        batch = batcher.offer(_req(1, 0.1), 0.1)
        assert batch is not None
        assert batch.samples == 2
        assert batch.formed_at == 0.1
        assert batcher.pending == 0

    def test_deadline_is_oldest_arrival_plus_max_wait(self):
        batcher = ContinuousBatcher(capacity=10, max_wait_s=0.5)
        assert batcher.deadline() is None
        batcher.offer(_req(0, 1.0), 1.0)
        batcher.offer(_req(1, 1.2), 1.2)
        assert batcher.deadline() == pytest.approx(1.5)

    def test_flush_returns_partial_batch(self):
        batcher = ContinuousBatcher(capacity=10, max_wait_s=0.5)
        batcher.offer(_req(0, 1.0), 1.0)
        batch = batcher.flush(1.5)
        assert batch is not None
        assert batch.samples == 1
        assert batcher.flush(2.0) is None

    def test_token_changes_on_close_for_lazy_invalidation(self):
        batcher = ContinuousBatcher(capacity=1, max_wait_s=0.5)
        token = batcher.token
        batcher.offer(_req(0, 0.0), 0.0)  # capacity 1: closes at once
        assert batcher.token != token

    def test_oversized_request_forms_one_batch(self):
        batcher = ContinuousBatcher(capacity=4, max_wait_s=0.5)
        batch = batcher.offer(_req(0, 0.0, samples=9), 0.0)
        assert batch is not None and batch.samples == 9

    def test_batch_indices_are_sequential(self):
        batcher = ContinuousBatcher(capacity=1, max_wait_s=0.5)
        indices = [
            batcher.offer(_req(i, 0.1 * i), 0.1 * i).index for i in range(3)
        ]
        assert indices == [0, 1, 2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ContinuousBatcher(capacity=0, max_wait_s=0.1)
        with pytest.raises(ValueError):
            ContinuousBatcher(capacity=1, max_wait_s=-0.1)


class TestLeastOutstandingRouter:
    def test_ties_break_to_lowest_index(self):
        router = LeastOutstandingRouter(3)
        assert router.pick(0.0) == 0

    def test_routes_to_least_backlogged(self):
        router = LeastOutstandingRouter(2)
        router.commit(0, start=0.0, gap_s=1.0)  # replica 0 busy to t=1
        assert router.pick(0.1) == 1
        router.commit(1, start=0.1, gap_s=2.0)  # replica 1 busy to t=2.1
        assert router.pick(0.2) == 0

    def test_backlog_drains_with_time(self):
        router = LeastOutstandingRouter(1)
        router.commit(0, start=0.0, gap_s=1.0)
        assert router.backlog(0, 0.5) == pytest.approx(0.5)
        assert router.backlog(0, 2.0) == 0.0

    def test_stats_track_dispatches_and_busy(self):
        router = LeastOutstandingRouter(2)
        router.commit(0, start=0.0, gap_s=1.0)
        router.commit(1, start=0.0, gap_s=0.5)
        stats = router.stats()
        assert stats["dispatched"] == [1, 1]
        assert stats["busy_s"] == [1.0, 0.5]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LeastOutstandingRouter(0)
