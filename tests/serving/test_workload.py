"""Workload generators: seeded Poisson streams and trace replay."""

import pytest

from repro.serving.workload import Request, poisson_arrivals, trace_arrivals


class TestPoissonArrivals:
    def test_deterministic_for_equal_seed(self):
        a = poisson_arrivals(50.0, 2.0, seed=7)
        b = poisson_arrivals(50.0, 2.0, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert poisson_arrivals(50.0, 2.0, seed=0) != poisson_arrivals(
            50.0, 2.0, seed=1
        )

    def test_sorted_in_window_and_indexed(self):
        requests = poisson_arrivals(100.0, 1.0, seed=3)
        assert all(0 <= r.arrival < 1.0 for r in requests)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.index for r in requests] == list(range(len(requests)))

    def test_rate_roughly_matches(self):
        requests = poisson_arrivals(200.0, 5.0, seed=11)
        # 1000 expected arrivals; a Poisson count is within +-20% with
        # overwhelming probability (and the stream is seeded anyway)
        assert 800 <= len(requests) <= 1200

    def test_samples_per_request(self):
        requests = poisson_arrivals(50.0, 1.0, seed=0, samples_per_request=4)
        assert all(r.samples == 4 for r in requests)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0.0)
        with pytest.raises(ValueError):
            Request(index=0, arrival=-1.0)
        with pytest.raises(ValueError):
            Request(index=0, arrival=0.0, samples=0)


class TestTraceArrivals:
    def test_plain_floats_and_jsonl(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(
            "# comment\n"
            "0.5\n"
            '{"arrival": 0.25, "samples": 3}\n'
            "\n"
            "0.75\n"
        )
        requests = trace_arrivals(path)
        assert [r.arrival for r in requests] == [0.25, 0.5, 0.75]
        assert [r.samples for r in requests] == [3, 1, 1]
        assert [r.index for r in requests] == [0, 1, 2]

    def test_accepts_iterable_of_lines(self):
        requests = trace_arrivals(["0.2", "0.1"])
        assert [r.arrival for r in requests] == [0.1, 0.2]

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            trace_arrivals(["0.1", "not-a-number"])

    def test_missing_arrival_key(self):
        with pytest.raises(ValueError, match="line 1"):
            trace_arrivals(['{"samples": 2}'])
