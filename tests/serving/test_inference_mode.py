"""Inference-mode planning: memory never exceeds training mode, plans
verify, and training plans are untouched.

The memory property is checked at the profiler level on the *same*
stage assignment (the apples-to-apples comparison the formula promises:
weights-plus-KV accounting is pointwise <= weights-plus-gradients-plus-
optimizer-state-plus-stashes), for every preset model x cluster combo,
under both the plain and the checkpointed stash regimes.
"""

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, GPTConfig, build_bert, build_gpt
from repro.partitioner import auto_partition
from repro.profiler.profiler import GraphProfiler
from repro.verify import verify_plan

MODELS = {
    "bert-base": lambda: build_bert(
        BertConfig(hidden_size=768, num_layers=12, num_heads=12)
    ),
    "bert-large": lambda: build_bert(BertConfig()),
    "gpt-tiny": lambda: build_gpt(GPTConfig(
        hidden_size=256, num_layers=4, num_heads=4,
        seq_len=256, vocab_size=8192,
    )),
}

CLUSTERS = {"v100x8": 1, "v100x16": 2, "v100x32": 4}


@pytest.fixture(scope="module")
def graphs():
    return {name: build() for name, build in MODELS.items()}


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("cluster_name", sorted(CLUSTERS))
class TestInferenceMemoryNeverExceedsTraining:
    def test_stagewise_memory_le_training(
        self, graphs, model_name, cluster_name
    ):
        graph = graphs[model_name]
        cluster = paper_cluster(CLUSTERS[cluster_name])
        plan = auto_partition(
            graph, cluster, batch_size=64, verify=False
        )
        prof_train = GraphProfiler(graph, cluster)
        prof_inf = GraphProfiler(graph, cluster, mode="inference")
        for stage in plan.stages:
            for inflight, checkpointing in (
                (1, False),
                (plan.num_microbatches, plan.num_stages > 1),
            ):
                train = prof_train.profile(
                    stage.tasks, stage.microbatch_size,
                    inflight, checkpointing,
                )
                inference = prof_inf.profile(
                    stage.tasks, stage.microbatch_size,
                    inflight, checkpointing,
                )
                assert inference.memory <= train.memory * (1 + 1e-12)
                assert inference.time_bwd == 0.0
                assert inference.time_fwd == train.time_fwd


@pytest.mark.parametrize("model_name", ["bert-base", "gpt-tiny"])
class TestInferencePlans:
    def test_plan_verifies_and_is_forward_only(self, graphs, model_name):
        graph = graphs[model_name]
        cluster = paper_cluster(1)
        plan = auto_partition(
            graph, cluster, batch_size=64, mode="inference"
        )
        assert plan.mode == "inference"
        assert all(s.profile.time_bwd == 0.0 for s in plan.stages)
        assert plan.diagnostics.allreduce_time == 0.0
        assert plan.diagnostics.optimizer_time == 0.0
        assert plan.iteration_time == pytest.approx(
            plan.diagnostics.pipeline_time
        )
        # an explicit second verification, independent of the planner's
        # own verify pass
        verify_plan(plan, graph, cluster)

    def test_inference_iteration_never_slower(self, graphs, model_name):
        graph = graphs[model_name]
        cluster = paper_cluster(1)
        training = auto_partition(graph, cluster, batch_size=64)
        inference = auto_partition(
            graph, cluster, batch_size=64, mode="inference"
        )
        assert inference.iteration_time <= training.iteration_time
