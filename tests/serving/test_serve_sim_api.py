"""The shared serve-sim entry: CLI and daemon surfaces are identical."""

import json

import pytest

from repro.cli import main as cli_main
from repro.serving import run_serving_sim

#: small, fast arguments shared by every test in this module
ARGS = dict(rps=50.0, slo_ms=200.0, duration_s=1.0, seed=0, max_replicas=4)


@pytest.fixture(scope="module")
def summary():
    return run_serving_sim("gpt-tiny", "v100x8", **ARGS)


class TestRunServingSim:
    def test_summary_contract(self, summary):
        assert summary["mode"] == "inference"
        assert summary["replicas"] >= 1
        assert summary["met_slo"] is True
        assert summary["latency_ms"]["p99"] <= ARGS["slo_ms"]
        assert summary["latency_ms"]["p50"] <= summary["latency_ms"]["p99"]
        assert summary["throughput_rps"] > 0
        assert summary["workload"]["requests"] > 0
        assert summary["plan"]["num_stages"] >= 1
        json.dumps(summary)  # JSON-safe end to end

    def test_deterministic(self, summary):
        again = run_serving_sim("gpt-tiny", "v100x8", **ARGS)
        assert again == summary

    def test_spec_objects_match_preset_names(self, summary):
        via_spec = run_serving_sim(
            {"preset": "gpt-tiny"}, {"preset": "v100x8"}, **ARGS
        )
        assert via_spec == summary

    def test_trace_workload(self, tmp_path, summary):
        trace = tmp_path / "arrivals.txt"
        trace.write_text("".join(f"{0.01 * i}\n" for i in range(20)))
        result = run_serving_sim(
            "gpt-tiny", "v100x8", slo_ms=200.0, workload_trace=str(trace)
        )
        assert result["workload"]["kind"] == "trace"
        assert result["workload"]["requests"] == 20

    def test_unknown_preset_is_service_error(self):
        from repro.service.protocol import ServiceError

        with pytest.raises(ServiceError):
            run_serving_sim("no-such-model", "v100x8")


class TestDaemonParity:
    def test_endpoint_returns_identical_summary(self, summary):
        from repro.service import PlanServer
        from repro.service.client import ServiceClient

        server = PlanServer(workers=2).start_in_thread()
        try:
            client = ServiceClient(port=server.port)
            result = client.serving_sim(
                model="gpt-tiny", cluster="v100x8", **ARGS
            )
        finally:
            server.stop()
        assert result["serving"] == summary
        assert result["meta"]["wall_ms"] > 0

    def test_bad_request_paths(self):
        from repro.service import PlanServer
        from repro.service.client import ServiceClient, ServiceHTTPError

        server = PlanServer(workers=2).start_in_thread()
        try:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceHTTPError) as exc:
                client.serving_sim(model="gpt-tiny")  # missing cluster
            assert exc.value.code == "bad_request"
            with pytest.raises(ServiceHTTPError) as exc:
                client.serving_sim(
                    model="gpt-tiny", cluster="v100x8", bogus=1
                )
            assert exc.value.code == "bad_request"
        finally:
            server.stop()


class TestServeSimCLI:
    def test_acceptance_invocation(self, capsys):
        rc = cli_main([
            "serve-sim", "--model", "gpt-tiny", "--cluster", "v100x8",
            "--rps", "50", "--slo-ms", "200", "--duration", "1.0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "p50=" in out and "p99=" in out
        assert "throughput:" in out
        assert "replicas:" in out and "met" in out

    def test_trace_out(self, capsys, tmp_path):
        out_path = tmp_path / "serving.json"
        rc = cli_main([
            "serve-sim", "--model", "gpt-tiny", "--cluster", "v100x8",
            "--duration", "0.5", "--trace-out", str(out_path),
        ])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert "serving trace written" in capsys.readouterr().out

    def test_unknown_model_exits_2(self, capsys):
        rc = cli_main([
            "serve-sim", "--model", "nope", "--cluster", "v100x8",
        ])
        assert rc == 2
        assert "ERROR" in capsys.readouterr().out
