"""HTTP round-trip tests against a live in-thread ``PlanServer``.

Real sockets, the stdlib client, and the raw-HTTP edge cases a JSON
client never sends (unknown routes, wrong verbs, malformed bodies,
oversized payloads).
"""

import http.client
import json

import pytest

from repro.service import (
    PlanServer,
    ServiceClient,
    ServiceHTTPError,
    wait_until_healthy,
)

MODEL = {"family": "bert", "hidden": 256, "layers": 4, "heads": 8}
PARAMS = {"model": MODEL, "cluster": {"preset": "v100x8"}, "batch_size": 64}


@pytest.fixture(scope="module")
def server():
    server = PlanServer(workers=2).start_in_thread()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(server):
    client = wait_until_healthy(port=server.port)
    yield client
    client.close()


def raw_request(server, verb, path, body=None, headers=None):
    """One raw HTTP exchange, bypassing the JSON client's conventions."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request(verb, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


class TestRoundTrips:
    def test_healthz(self, client):
        assert client.healthz()["status"] == "ok"

    def test_plan_warm_repeat_on_one_connection(self, client):
        cold = client.plan(**PARAMS)
        warm = client.plan(**PARAMS)
        assert cold["meta"]["cache"] in ("cold", "warm")
        assert warm["meta"]["cache"] == "warm"
        assert warm["plan"] == cold["plan"]

    def test_verify_round_trip(self, client):
        doc = client.plan(**PARAMS)["plan"]
        out = client.verify(plan=doc, model=MODEL,
                            cluster=PARAMS["cluster"])
        assert out["verified"] is True

    def test_stats(self, client):
        client.plan(**PARAMS)
        stats = client.stats()
        assert stats["counters"]["service.requests"] >= 1
        assert stats["store"]["entries"] > 0

    def test_error_carries_code_and_status(self, client):
        with pytest.raises(ServiceHTTPError) as ei:
            client.plan(model={"preset": "nope"},
                        cluster={"preset": "v100x8"}, batch_size=64)
        assert ei.value.http_status == 400
        assert ei.value.code == "bad_request"

    def test_replan_no_base_is_409(self, server):
        client = ServiceClient(port=server.port)
        try:
            with pytest.raises(ServiceHTTPError) as ei:
                client.replan(model={"family": "mlp", "widths": [16, 4]},
                              cluster={"preset": "v100x8"}, batch_size=8)
            assert ei.value.http_status == 409
            assert ei.value.code == "no_base"
        finally:
            client.close()


class TestRawHTTP:
    def test_unknown_route_is_404(self, server):
        status, doc = raw_request(server, "GET", "/v1/nothing-here")
        assert status == 404
        assert doc["error"]["code"] == "not_found"

    def test_wrong_verb_on_known_route_is_405(self, server):
        status, _doc = raw_request(server, "GET", "/v1/plan")
        assert status == 405

    def test_body_that_is_not_json_is_400(self, server):
        status, doc = raw_request(
            server, "POST", "/v1/plan", body=b"this is not json",
            headers={"Content-Length": "16"},
        )
        assert status == 400
        assert doc["error"]["code"] == "bad_request"

    def test_oversized_body_is_413(self, server):
        status, doc = raw_request(
            server, "POST", "/v1/plan", body=None,
            headers={"Content-Length": str(64 * 2**20)},
        )
        assert status == 413
        assert doc["error"]["code"] == "bad_request"

    def test_missing_params_is_400(self, server):
        status, doc = raw_request(
            server, "POST", "/v1/plan", body=b"{}",
            headers={"Content-Length": "2"},
        )
        assert status == 400
        assert "model" in doc["error"]["message"]


class TestRepairRoute:
    def test_repair_round_trip(self, client):
        client.plan(**PARAMS)  # establish the base
        out = client.request(
            "POST", "/v1/repair",
            dict(PARAMS, event={"type": "scale_up", "extra_nodes": 1}),
        )
        assert out["plan"]["stages"]
        assert out["repair"]["event"] == "ScaleUp"
        assert out["repair"]["surviving_devices"] == 16  # 1+1 nodes x 8

    def test_repair_cold_is_409(self, server):
        fresh = ServiceClient(port=server.port)
        try:
            with pytest.raises(ServiceHTTPError) as ei:
                fresh.request(
                    "POST", "/v1/repair",
                    {"model": {"family": "mlp", "widths": [32, 16, 4]},
                     "cluster": {"preset": "v100x8"}, "batch_size": 8,
                     "event": {"type": "node_loss", "node_index": 0}},
                )
            assert ei.value.http_status == 409
            assert ei.value.code == "no_base"
        finally:
            fresh.close()
