"""Unit tests for the transport-independent plan engine.

Coalescing semantics (N identical concurrent requests -> one pipeline
run, N-1 coalesced followers), cold/warm/delta classification against
the shared artifact store, the ``replan`` base contract, the verify
round trip, and the stats surface.
"""

import concurrent.futures
import threading

import pytest

from repro.service import PlanEngine, ServiceError

#: small-but-real model: plans in well under a second, exercises every
#: pipeline pass (the module-scoped engine below keeps it warm)
MODEL = {"family": "bert", "hidden": 256, "layers": 4, "heads": 8}
PARAMS = {"model": MODEL, "cluster": {"preset": "v100x8"}, "batch_size": 64}


@pytest.fixture(scope="module")
def warm_engine():
    """One engine that has already served PARAMS cold."""
    engine = PlanEngine(workers=2)
    engine.plan(dict(PARAMS))
    return engine


class TestClassification:
    def test_cold_then_warm_then_delta(self):
        engine = PlanEngine(workers=2)

        cold = engine.plan(dict(PARAMS))
        assert cold["meta"]["cache"] == "cold"
        assert cold["meta"]["reused_passes"] == []
        assert cold["meta"]["verified"] is True
        assert cold["plan"]["stages"]

        warm = engine.plan(dict(PARAMS))
        assert warm["meta"]["cache"] == "warm"
        assert warm["plan"] == cold["plan"]

        delta = engine.plan(dict(PARAMS, cluster={"preset": "v100x16"}))
        assert delta["meta"]["cache"] == "delta"
        # a cluster resize keeps the model-side artifacts
        assert "profile_tensors" in delta["meta"]["reused_passes"]
        assert delta["meta"]["fingerprint"] != cold["meta"]["fingerprint"]

    def test_option_change_is_a_new_fingerprint(self, warm_engine):
        capped = warm_engine.plan(
            dict(PARAMS, options={"max_microbatches": 2})
        )
        assert capped["meta"]["cache"] in ("cold", "delta")


class TestReplanContract:
    def test_replan_without_a_base_is_409(self):
        engine = PlanEngine(workers=1)
        with pytest.raises(ServiceError) as ei:
            engine.replan(dict(PARAMS))
        assert ei.value.code == "no_base"
        assert ei.value.status == 409

    def test_replan_with_a_base_serves_the_delta(self, warm_engine):
        out = warm_engine.replan(
            dict(PARAMS, cluster={"preset": "v100x16"})
        )
        assert out["meta"]["cache"] in ("warm", "delta")


class TestCoalescing:
    def test_n_identical_concurrent_requests_run_once(self):
        engine = PlanEngine(workers=4)
        n = 5
        calls = []
        release = threading.Event()
        real_execute = engine._execute

        def gated_execute(req):
            calls.append(req.key)
            # hold the leader until the followers have all coalesced,
            # so the test is deterministic rather than racy
            assert release.wait(timeout=30)
            return real_execute(req)

        engine._execute = gated_execute
        with concurrent.futures.ThreadPoolExecutor(n) as pool:
            futures = [
                pool.submit(engine.plan, dict(PARAMS)) for _ in range(n)
            ]
            deadline = threading.Event()
            for _ in range(300):
                coalesced = engine.stats()["counters"].get(
                    "service.coalesced", 0
                )
                if coalesced >= n - 1:
                    break
                deadline.wait(0.05)
            release.set()
            results = [f.result() for f in futures]

        assert len(calls) == 1  # one pipeline run
        metas = [r["meta"] for r in results]
        assert sum(1 for m in metas if m.get("coalesced")) == n - 1
        assert len({m["fingerprint"] for m in metas}) == 1
        docs = [r["plan"] for r in results]
        assert all(doc == docs[0] for doc in docs)

    def test_infeasible_leader_fails_and_clears_the_key(self):
        engine = PlanEngine(workers=2)
        # an impossibly small memory budget: the leader's pipeline run
        # fails, and the failure must reach every coalesced waiter
        params = dict(PARAMS, options={"memory_budget_gb": 1e-6})
        with pytest.raises(ServiceError) as ei:
            engine.plan(params)
        assert ei.value.code == "infeasible"
        assert ei.value.status == 422
        # the key is no longer in flight: a retry fails the same way
        # rather than hanging on a dead future
        with pytest.raises(ServiceError):
            engine.plan(params)


class TestVerifyEndpoint:
    def test_round_trip(self, warm_engine):
        doc = warm_engine.plan(dict(PARAMS))["plan"]
        out = warm_engine.verify(
            {
                "plan": doc,
                "model": MODEL,
                "cluster": PARAMS["cluster"],
            }
        )
        assert out["verified"] is True
        assert out["num_stages"] == len(doc["stages"])

    def test_mutilated_document_fails(self, warm_engine):
        doc = dict(warm_engine.plan(dict(PARAMS))["plan"])
        doc["stages"] = []
        with pytest.raises(ServiceError) as ei:
            warm_engine.verify(
                {"plan": doc, "model": MODEL, "cluster": PARAMS["cluster"]}
            )
        assert ei.value.code == "verification_failed"
        assert ei.value.status == 422

    def test_missing_fields(self, warm_engine):
        with pytest.raises(ServiceError):
            warm_engine.verify({"plan": {}})


class TestSimulate:
    def test_timeline_summary(self, warm_engine):
        out = warm_engine.simulate(dict(PARAMS))
        timeline = out["timeline"]
        assert timeline["makespan"] > 0
        assert 0 <= timeline["bubble_fraction"] < 1
        assert len(timeline["stage_utilization"]) == timeline["num_stages"]


class TestStats:
    def test_surface(self, warm_engine):
        warm_engine.plan(dict(PARAMS))
        stats = warm_engine.stats()
        assert stats["counters"]["service.requests"] >= 2
        assert stats["models_planned"] >= 1
        assert "warm" in stats["latency_ms"]
        assert stats["latency_ms"]["warm"]["p50_ms"] > 0
        assert stats["store"]["entries"] > 0
        assert stats["draining"] is False

    def test_unknown_method(self, warm_engine):
        with pytest.raises(ServiceError) as ei:
            warm_engine.handle("explode", {})
        assert ei.value.code == "not_found"


class TestRepairContract:
    EVENT = {"type": "node_loss", "node_index": 0}

    def test_repair_without_a_base_is_409(self):
        engine = PlanEngine(workers=1)
        with pytest.raises(ServiceError) as ei:
            engine.repair(dict(PARAMS, event=dict(self.EVENT)))
        assert ei.value.code == "no_base"
        assert ei.value.status == 409

    def test_repair_after_plan_returns_repaired_plan(self, warm_engine):
        # the pre-event cluster must have a node to lose: v100x16 is
        # two 8-device nodes (v100x8 is a single node)
        out = warm_engine.repair(
            dict(PARAMS, cluster={"preset": "v100x16"},
                 event=dict(self.EVENT))
        )
        assert out["plan"]["stages"]
        info = out["repair"]
        assert info["event"] == "NodeLoss"
        assert isinstance(info["used_full_replan"], bool)
        assert info["migrated_pairs"] >= 0
        assert info["surviving_devices"] == 8  # 2 nodes - 1, x8 devices
        assert out["meta"]["fingerprint"]
        stats = warm_engine.stats()
        assert stats["counters"]["service.repair_requests"] >= 1

    def test_bad_event_is_bad_request(self, warm_engine):
        with pytest.raises(ServiceError) as ei:
            warm_engine.repair(dict(PARAMS, event={"type": "flood"}))
        assert ei.value.code == "bad_request"

    def test_missing_event_is_bad_request(self, warm_engine):
        with pytest.raises(ServiceError) as ei:
            warm_engine.repair(dict(PARAMS))
        assert ei.value.code == "bad_request"


class TestUptimeClock:
    def test_uptime_is_monotonic_not_wall_clock(self):
        # regression: uptime_s used to be time.time() deltas, so an NTP
        # step or DST change could report negative uptime; the unix
        # timestamp now travels in its own field
        engine = PlanEngine(workers=1)
        stats = engine.stats()
        assert stats["uptime_s"] >= 0.0
        assert stats["started_at_unix"] > 1.6e9  # a real wall-clock date
        later = engine.stats()
        assert later["uptime_s"] >= stats["uptime_s"]
