"""Graceful-shutdown and crash-safety tests for the plan service.

The drain contract: in-flight plans complete, already-coalesced waiters
get the leader's result, new leaders are refused with
``shutting_down``.  Crash safety: a killed process can leave at most
truncated-or-orphaned cache files, which the next engine treats as a
miss and repairs (write-then-rename keeps final paths whole).
"""

import concurrent.futures
import threading

import pytest

from repro.service import PlanEngine, PlanServer, ServiceError, ServiceClient

MODEL = {"family": "bert", "hidden": 256, "layers": 4, "heads": 8}
PARAMS = {"model": MODEL, "cluster": {"preset": "v100x8"}, "batch_size": 64}


def gate_execute(engine):
    """Wrap ``engine._execute`` so the test controls when it finishes."""
    entered = threading.Event()
    release = threading.Event()
    real_execute = engine._execute

    def gated(req):
        entered.set()
        assert release.wait(timeout=30)
        return real_execute(req)

    engine._execute = gated
    return entered, release


class TestDrain:
    def test_drain_waits_for_inflight_and_refuses_new_leaders(self):
        engine = PlanEngine(workers=2)
        entered, release = gate_execute(engine)
        with concurrent.futures.ThreadPoolExecutor(3) as pool:
            inflight = pool.submit(engine.plan, dict(PARAMS))
            assert entered.wait(timeout=10)

            drain = pool.submit(engine.drain, 60.0)
            while not engine.draining:
                pass
            # a *new* key must be refused while draining
            with pytest.raises(ServiceError) as ei:
                engine.plan(dict(PARAMS, batch_size=128))
            assert ei.value.code == "shutting_down"
            assert ei.value.status == 503

            # the in-flight key still coalesces: this waiter gets the
            # leader's result even though the engine is draining
            follower = pool.submit(engine.plan, dict(PARAMS))

            release.set()
            assert drain.result(timeout=60) is True
            assert inflight.result(timeout=60)["meta"]["cache"] == "cold"
            out = follower.result(timeout=60)
            assert out["meta"].get("coalesced") is True

    def test_drain_timeout_reports_incomplete(self):
        engine = PlanEngine(workers=1)
        entered, release = gate_execute(engine)
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            inflight = pool.submit(engine.plan, dict(PARAMS))
            assert entered.wait(timeout=10)
            assert engine.drain(timeout=0.05) is False
            release.set()
            assert inflight.result(timeout=60)["plan"]["stages"]

    def test_idle_drain_is_immediate(self):
        engine = PlanEngine(workers=1)
        assert engine.drain(timeout=1.0) is True
        assert engine.draining is True


class TestServerShutdown:
    def test_stop_drains_and_the_socket_closes(self):
        server = PlanServer(workers=2).start_in_thread()
        client = ServiceClient(port=server.port)
        try:
            out = client.plan(**PARAMS)
            assert out["meta"]["verified"] is True
        finally:
            client.close()
        server.stop()
        fresh = ServiceClient(port=server.port, timeout=2.0)
        with pytest.raises((ConnectionError, OSError)):
            fresh.healthz()
        fresh.close()

    def test_shutdown_endpoint_stops_the_server(self):
        server = PlanServer(workers=1).start_in_thread()
        client = ServiceClient(port=server.port)
        try:
            assert client.shutdown() == {"stopping": True}
        finally:
            client.close()
        server._thread.join(timeout=30)
        assert not server._thread.is_alive()
        server._thread = None  # already joined; stop() must not re-join


class TestMissThenRepair:
    def test_corrupt_cache_is_a_miss_not_a_failure(self, tmp_path):
        cold = PlanEngine(cache_dir=tmp_path, workers=1).plan(dict(PARAMS))
        assert cold["meta"]["cache"] == "cold"

        # a fresh engine over the same root serves from disk
        warm = PlanEngine(cache_dir=tmp_path, workers=1).plan(dict(PARAMS))
        assert warm["meta"]["cache"] in ("warm", "delta")
        assert warm["plan"] == cold["plan"]

        # simulate a hard kill: every final-path file truncated to
        # garbage, plus an orphaned half-written temp file
        files = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert files, "the disk cache should have entries"
        for path in files:
            path.write_bytes(b"\x00 definitely not a cache entry")
        orphan_dir = tmp_path / "artifacts"
        orphan_dir.mkdir(exist_ok=True)
        (orphan_dir / ".crashed.npz.tmp").write_bytes(b"partial write")

        repaired = PlanEngine(cache_dir=tmp_path, workers=1).plan(
            dict(PARAMS)
        )
        assert repaired["meta"]["cache"] == "cold"  # miss...
        assert repaired["meta"]["verified"] is True
        assert repaired["plan"] == cold["plan"]

        # ...then repair: the rewritten entries serve the next engine
        again = PlanEngine(cache_dir=tmp_path, workers=1).plan(dict(PARAMS))
        assert again["meta"]["cache"] in ("warm", "delta")
        assert again["plan"] == cold["plan"]
