"""Per-request client timeouts and the dropped-keep-alive retry."""

import socket
import threading

import pytest

from repro.service import PlanServer
from repro.service.client import ServiceClient


class TestPerRequestTimeout:
    def test_override_applies_to_live_socket(self):
        server = PlanServer(workers=1).start_in_thread()
        try:
            client = ServiceClient(port=server.port, timeout=120.0)
            client.healthz()  # establish the keep-alive connection
            assert client._conn.sock.gettimeout() == 120.0
            client.healthz(timeout=7.5)
            assert client._conn.sock.gettimeout() == 7.5
            # the next request falls back to the client-wide default
            client.healthz()
            assert client._conn.sock.gettimeout() == 120.0
        finally:
            server.stop()

    def test_deadline_exceeded_raises_and_drops_connection(self):
        # a listener that accepts but never answers: the per-request
        # deadline must fire instead of waiting the client-wide 120s
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(listener.accept()), daemon=True
        )
        thread.start()
        client = ServiceClient(port=port, timeout=120.0)
        try:
            with pytest.raises(TimeoutError):
                client.stats(timeout=0.2)
            # a timed-out request must not leave a poisoned keep-alive
            # connection behind
            assert client._conn is None
        finally:
            client.close()
            listener.close()
            for sock, _addr in accepted:
                sock.close()


class TestDroppedKeepAliveRetry:
    def test_request_retries_once_on_dead_connection(self):
        server = PlanServer(workers=1).start_in_thread()
        try:
            client = ServiceClient(port=server.port)
            client.healthz()
            # kill the kept-alive socket under the client: the next
            # request hits ConnectionResetError/BrokenPipeError and must
            # transparently retry on a fresh connection
            client._conn.sock.close()
            assert client.healthz()["status"] == "ok"
        finally:
            server.stop()
