"""Unit tests for the plan-service wire protocol.

Request normalization (model/cluster/config builders), the coalescing
fingerprint, and the error-code table that maps protocol failures onto
HTTP statuses.
"""

import pytest

from repro.hardware.device import Precision
from repro.service.protocol import (
    ERROR_STATUS,
    ServiceError,
    build_cluster,
    build_config,
    build_model,
    error_envelope,
    normalize_plan_request,
    ok_envelope,
)


def plan_params(**overrides):
    params = {
        "model": {"family": "mlp", "widths": [64, 32, 10]},
        "cluster": {"preset": "v100x8"},
        "batch_size": 64,
    }
    params.update(overrides)
    return params


class TestServiceError:
    def test_status_comes_from_the_code_table(self):
        assert ServiceError("no_base", "x").status == 409
        assert ServiceError("infeasible", "x").status == 422
        assert ServiceError("shutting_down", "x").status == 503

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            ServiceError("typo_code", "x")

    def test_detail_lands_in_the_error_doc(self):
        exc = ServiceError("bad_request", "boom", {"field": "model"})
        doc = exc.as_error_doc()
        assert doc["code"] == "bad_request"
        assert doc["message"] == "boom"
        assert doc["field"] == "model"

    def test_every_code_maps_to_a_real_http_status(self):
        for code, status in ERROR_STATUS.items():
            assert 400 <= status < 600, code


class TestEnvelopes:
    def test_shapes(self):
        assert ok_envelope({"a": 1}) == {"ok": True, "result": {"a": 1}}
        env = error_envelope(ServiceError("not_found", "nope"))
        assert env["ok"] is False
        assert env["error"]["code"] == "not_found"


class TestBuildModel:
    def test_presets(self):
        base, _ = build_model({"preset": "bert-base"})
        large, _ = build_model({"preset": "bert-large"})
        assert len(base.tasks) < len(large.tasks)

    def test_unknown_preset(self):
        with pytest.raises(ServiceError) as ei:
            build_model({"preset": "bert-xxl"})
        assert ei.value.code == "bad_request"

    def test_gpt_default_heads_divide_hidden(self):
        # regression: the default head count must divide any hidden size
        # the caller picks (1024/12 used to blow up in reshape)
        graph, _ = build_model({"family": "gpt", "hidden": 1024, "layers": 2})
        assert graph.tasks

    def test_mlp_family(self):
        graph, canonical = build_model({"family": "mlp", "widths": [8, 4, 2]})
        assert graph.tasks
        assert '"family": "mlp"' in canonical

    def test_model_must_be_an_object(self):
        with pytest.raises(ServiceError):
            build_model("bert-base")

    def test_missing_preset_and_family(self):
        with pytest.raises(ServiceError) as ei:
            build_model({"name": "bert"})
        assert "preset" in str(ei.value)


class TestBuildCluster:
    def test_presets_scale_nodes(self):
        one, _ = build_cluster({"preset": "v100x8"})
        four, _ = build_cluster({"preset": "v100x32"})
        assert one.total_devices == 8
        assert four.total_devices == 32

    def test_explicit_nodes_and_comm_model(self):
        cluster, _ = build_cluster({"nodes": 2, "comm_model": "topology"})
        assert cluster.num_nodes == 2
        assert cluster.comm_model == "topology"

    def test_missing_shape(self):
        with pytest.raises(ServiceError) as ei:
            build_cluster({})
        assert ei.value.code == "bad_request"


class TestBuildConfig:
    def test_batch_size_required_and_positive(self):
        for bad in ({}, {"batch_size": 0}, {"batch_size": "64"}):
            with pytest.raises(ServiceError):
                build_config(bad)

    def test_verify_always_on(self):
        cfg = build_config({"batch_size": 32})
        assert cfg.verify is True

    def test_options_map_onto_planner_config(self):
        cfg = build_config(
            {
                "batch_size": 32,
                "options": {
                    "amp": True,
                    "blocks": 8,
                    "max_microbatches": 4,
                    "memory_budget_gb": 2.0,
                    "comm_model": "topology",
                },
            }
        )
        assert cfg.precision == Precision.AMP
        assert cfg.num_blocks == 8
        assert cfg.max_microbatches == 4
        assert cfg.memory_budget == 2.0 * 2**30
        assert cfg.comm_model == "topology"

    def test_unknown_option_is_rejected_with_the_supported_list(self):
        with pytest.raises(ServiceError) as ei:
            build_config({"batch_size": 32, "options": {"blokcs": 8}})
        assert "blokcs" in str(ei.value)
        assert "blocks" in str(ei.value)


class TestNormalize:
    def test_missing_model_or_cluster(self):
        with pytest.raises(ServiceError):
            normalize_plan_request({"cluster": {"preset": "v100x8"}})
        with pytest.raises(ServiceError):
            normalize_plan_request({"model": {"preset": "bert-base"}})

    def test_key_pins_model_cluster_and_config(self):
        base = normalize_plan_request(plan_params())
        same = normalize_plan_request(plan_params())
        assert same.key == base.key

        resized = normalize_plan_request(
            plan_params(cluster={"preset": "v100x16"})
        )
        assert resized.key != base.key
        assert resized.model_key == base.model_key  # same family

        rebatched = normalize_plan_request(plan_params(batch_size=128))
        assert rebatched.key != base.key

        other_model = normalize_plan_request(
            plan_params(model={"family": "mlp", "widths": [32, 16, 10]})
        )
        assert other_model.model_key != base.model_key

    def test_graph_cache_shares_built_graphs(self):
        cache = {}
        first = normalize_plan_request(plan_params(), graph_cache=cache)
        second = normalize_plan_request(plan_params(), graph_cache=cache)
        assert second.graph is first.graph
        assert len(cache) == 1


class TestParseEvent:
    def test_node_loss_and_preemption(self):
        from repro.planner.repair import NodeLoss, Preemption
        from repro.service.protocol import parse_event

        ev = parse_event({"type": "node_loss", "node_index": 1})
        assert isinstance(ev, NodeLoss) and ev.node_index == 1
        ev = parse_event({"type": "preemption", "node_index": 0})
        assert isinstance(ev, Preemption) and ev.node_index == 0

    def test_scale_up_with_class(self):
        from repro.planner.repair import ScaleUp
        from repro.service.protocol import parse_event

        ev = parse_event(
            {"type": "scale_up", "extra_nodes": 2, "class_name": "fast"}
        )
        assert isinstance(ev, ScaleUp)
        assert ev.extra_nodes == 2 and ev.class_name == "fast"
        # extra_nodes defaults to 1
        assert parse_event({"type": "scale_up"}).extra_nodes == 1

    def test_bad_specs_are_bad_requests(self):
        from repro.service.protocol import parse_event

        for spec in (
            None,
            [],
            {"type": "meteor_strike"},
            {"type": "node_loss"},  # missing node_index
            {"type": "node_loss", "node_index": "two"},
        ):
            with pytest.raises(ServiceError) as ei:
                parse_event(spec)
            assert ei.value.code == "bad_request"


class TestHeterogeneousCluster:
    CLASSES = {
        "classes": [
            {"name": "slow", "device": "v100", "nodes": 1,
             "devices_per_node": 8, "straggler_factor": 1.3},
            {"name": "fast", "device": "a100", "nodes": 1,
             "devices_per_node": 8},
        ]
    }

    def test_classes_spec_builds_mixed_cluster(self):
        cluster, _canonical = build_cluster(dict(self.CLASSES))
        assert cluster.is_heterogeneous
        assert cluster.total_devices == 16
        assert cluster.comm_model == "flat"
        names = [c.name for c in cluster.device_classes]
        assert names == ["slow", "fast"]
        assert cluster.device_classes[0].straggler_factor == 1.3

    def test_memory_gb_override(self):
        spec = {"classes": [
            {"name": "a", "device": "v100", "nodes": 1,
             "devices_per_node": 4, "memory_gb": 16},
        ]}
        cluster, _ = build_cluster(spec)
        assert cluster.device_classes[0].device.memory_bytes == 16 * 2**30

    def test_unknown_device_is_bad_request(self):
        spec = {"classes": [{"name": "a", "device": "h100", "nodes": 1}]}
        with pytest.raises(ServiceError) as ei:
            build_cluster(spec)
        assert ei.value.code == "bad_request"

    def test_empty_classes_is_bad_request(self):
        with pytest.raises(ServiceError) as ei:
            build_cluster({"classes": []})
        assert ei.value.code == "bad_request"

    def test_request_key_appends_classes_only_when_present(self):
        homogeneous = normalize_plan_request(plan_params())
        hetero = normalize_plan_request(
            plan_params(cluster=dict(self.CLASSES))
        )
        assert homogeneous.key != hetero.key
        # homogeneous keys never mention device classes, so they stay
        # bit-identical to what earlier releases computed
        assert "slow" not in homogeneous.key
        assert "slow:" in hetero.key and "fast:" in hetero.key

    def test_straggler_changes_the_key(self):
        spec = dict(self.CLASSES)
        a = normalize_plan_request(plan_params(cluster=spec))
        slowed = {"classes": [dict(c) for c in spec["classes"]]}
        slowed["classes"][0]["straggler_factor"] = 2.0
        b = normalize_plan_request(plan_params(cluster=slowed))
        assert a.key != b.key
