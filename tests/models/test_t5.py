"""Tests for the T5 encoder-decoder model and its partitioning/execution.

The encoder output fans out to every decoder layer's cross-attention, so
these tests double as coverage for non-chain DAG handling end to end.
"""

import numpy as np
import pytest

from repro.graph.validate import validate_graph
from repro.hardware import paper_cluster, tiny_cluster
from repro.models import T5Config, build_t5, t5_11b
from repro.partitioner import auto_partition
from repro.partitioner.atomic import atomic_partition, check_atomic_invariants
from repro.runtime import Executor, PartitionedExecutor, init_parameters


@pytest.fixture(scope="module")
def tiny_t5_config():
    return T5Config(
        hidden_size=32, num_encoder_layers=2, num_decoder_layers=2,
        num_heads=4, enc_seq_len=12, dec_seq_len=8, vocab_size=89,
    )


@pytest.fixture(scope="module")
def tiny_t5(tiny_t5_config):
    return build_t5(tiny_t5_config)


def t5_batch(rng, cfg, n=2):
    return {
        "input_ids": rng.integers(0, cfg.vocab_size, (n, cfg.enc_seq_len)),
        "decoder_input_ids": rng.integers(0, cfg.vocab_size, (n, cfg.dec_seq_len)),
        "encoder_mask": np.zeros((n, 1, 1, cfg.enc_seq_len)),
        "causal_mask": np.broadcast_to(
            np.triu(np.full((cfg.dec_seq_len, cfg.dec_seq_len), -1e9), k=1),
            (n, 1, cfg.dec_seq_len, cfg.dec_seq_len),
        ).copy(),
        "cross_mask": np.zeros((n, 1, 1, cfg.enc_seq_len)),
        "labels": rng.integers(0, cfg.vocab_size, (n, cfg.dec_seq_len)),
    }


class TestStructure:
    def test_valid(self, tiny_t5):
        validate_graph(tiny_t5)

    def test_cross_attention_fanout(self, tiny_t5, tiny_t5_config):
        """The encoder's final LN feeds every decoder layer (K and V)."""
        memory = tiny_t5.values["encoder.final_ln.out"]
        consumers = set(memory.consumers)
        for i in range(tiny_t5_config.num_decoder_layers):
            assert f"decoder.layer{i}.cross_attn.k" in consumers
            assert f"decoder.layer{i}.cross_attn.v" in consumers

    def test_shared_embedding_three_consumers(self, tiny_t5):
        shared = tiny_t5.values["shared.embedding"]
        assert set(shared.consumers) == {
            "encoder.embed", "decoder.embed", "lm_head.weight_t",
        }

    def test_11b_scale(self):
        cfg = t5_11b()
        # closed-form-ish check via the traced small model scaled up is
        # too slow; just assert the config matches T5-XXL's shape
        assert cfg.hidden_size == 4096
        assert cfg.num_encoder_layers == cfg.num_decoder_layers == 24

    def test_atomic_invariants(self, tiny_t5):
        comps = atomic_partition(tiny_t5)
        check_atomic_invariants(tiny_t5, comps)


class TestPartitioning:
    def test_auto_partition(self, tiny_t5):
        plan = auto_partition(tiny_t5, paper_cluster(), 64)
        assert plan.throughput > 0
        covered = set()
        for s in plan.stages:
            covered |= set(s.tasks)
        assert covered == set(tiny_t5.tasks)

    def test_multistage_partition_on_tight_memory(self, tiny_t5_config):
        cfg = T5Config(
            hidden_size=64, num_encoder_layers=4, num_decoder_layers=4,
            num_heads=4, enc_seq_len=32, dec_seq_len=16, vocab_size=512,
        )
        g = build_t5(cfg)
        cluster = tiny_cluster(num_nodes=1, devices_per_node=4,
                               memory_bytes=6 * 1024**2)
        plan = auto_partition(g, cluster, 16)
        assert plan.num_stages >= 2  # forced to split encoder/decoder


class TestExecution:
    def test_forward_backward(self, tiny_t5, tiny_t5_config, rng):
        ex = Executor(tiny_t5)
        loss, grads = ex.loss_and_grads(t5_batch(rng, tiny_t5_config))
        assert np.isfinite(loss)
        assert "shared.embedding" in grads

    def test_partitioned_equivalence_across_cross_attention(
        self, tiny_t5, tiny_t5_config, rng
    ):
        """Cut the pipeline INSIDE the decoder so the encoder memory and
        the shared embedding both cross the boundary."""
        params = init_parameters(tiny_t5, seed=9)
        whole = Executor(tiny_t5, params={k: v.copy() for k, v in params.items()})
        tasks = list(tiny_t5.tasks)
        cut = next(
            i for i, t in enumerate(tasks) if t.startswith("decoder.layer1.")
        )
        part = PartitionedExecutor(
            tiny_t5, [tasks[:cut], tasks[cut:]],
            params={k: v.copy() for k, v in params.items()},
            num_microbatches=2, checkpointing=True,
        )
        batch = t5_batch(rng, tiny_t5_config, n=4)
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = part.loss_and_grads(batch)
        assert lw == pytest.approx(lp, abs=1e-12)
        for k in gw:
            assert np.abs(gw[k] - gp[k]).max() < 1e-10
