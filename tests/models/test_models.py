"""Tests for the model zoo: structure, parameter counts, paper configs."""

import pytest

from repro.graph.validate import validate_graph
from repro.models import (
    BertConfig,
    GPTConfig,
    ResNetConfig,
    build_bert,
    build_diamond,
    build_fig2_example,
    build_gpt,
    build_mlp,
    build_resnet,
)
from repro.models.configs import FIG4_HIDDEN_SIZES, FIG4_NUM_LAYERS, FIG5_RESNETS
from repro.models.mlp import build_shared_constant


class TestBertConfig:
    def test_defaults_are_bert_large(self):
        cfg = BertConfig()
        assert cfg.hidden_size == 1024 and cfg.num_layers == 24
        assert cfg.ffn_size == 4096
        assert cfg.head_dim == 64

    def test_head_dim_divisibility(self):
        with pytest.raises(ValueError):
            BertConfig(hidden_size=100, num_heads=16).head_dim

    def test_paper_grid(self):
        assert FIG4_HIDDEN_SIZES == [1024, 1536, 2048]
        assert FIG4_NUM_LAYERS == [24, 48, 96, 144, 192, 256]


class TestBert:
    def test_bert_large_param_count(self):
        cfg = BertConfig()
        g = build_bert(cfg)
        # the paper quotes 340M for BERT-Large
        assert abs(g.num_parameters() - 340e6) / 340e6 < 0.02
        assert g.num_parameters() == cfg.approx_params()

    def test_largest_paper_model(self):
        cfg = BertConfig(hidden_size=2048, num_layers=256)
        # 12.9B parameters claimed; closed form only (tracing is slower)
        assert abs(cfg.approx_params() - 12.9e9) / 12.9e9 < 0.01

    def test_structure(self, tiny_bert, tiny_bert_config):
        validate_graph(tiny_bert)
        cfg = tiny_bert_config
        # one attention block and one FFN per layer
        for layer in range(cfg.num_layers):
            assert f"layer{layer}.attn.softmax" in tiny_bert.tasks
            assert f"layer{layer}.ffn.gelu" in tiny_bert.tasks
        assert "mlm.decoder" in tiny_bert.tasks
        assert "nsp.loss" in tiny_bert.tasks

    def test_tied_decoder_is_constant_transpose(self, tiny_bert):
        t = tiny_bert.tasks["mlm.decoder_weight_t"]
        assert t.op_type == "transpose"
        assert t.inputs == ["embeddings.word"]
        # its output is consumed by the vocabulary matmul
        assert "mlm.decoder" in tiny_bert.values[t.outputs[0]].consumers

    def test_untied_decoder(self):
        cfg = BertConfig(
            hidden_size=32, num_layers=1, num_heads=4, seq_len=8,
            vocab_size=50, tie_word_embeddings=False,
        )
        g = build_bert(cfg)
        assert "mlm.decoder_weight_t" not in g.tasks
        assert "mlm.decoder.weight_t" in g.values

    def test_no_nsp(self):
        cfg = BertConfig(
            hidden_size=32, num_layers=1, num_heads=4, seq_len=8,
            vocab_size=50, include_nsp=False,
        )
        g = build_bert(cfg)
        assert g.output_names == ["mlm.loss.out"]
        assert "nsp.pooler" not in g.tasks
        assert g.num_parameters() == cfg.approx_params()

    def test_flops_scale_with_layers(self):
        small = build_bert(
            BertConfig(hidden_size=32, num_layers=2, num_heads=4, seq_len=8,
                       vocab_size=50)
        )
        big = build_bert(
            BertConfig(hidden_size=32, num_layers=4, num_heads=4, seq_len=8,
                       vocab_size=50)
        )
        assert big.total_flops(1) > 1.5 * small.total_flops(1)


class TestResNet:
    def test_paper_sizes(self):
        # ResNet152x8 has 3.7B params in the paper
        g = build_resnet(ResNetConfig(depth=152, width_factor=8))
        assert abs(g.num_parameters() - 3.7e9) / 3.7e9 < 0.02

    def test_depth_block_counts(self):
        assert ResNetConfig(depth=50).stage_blocks == (3, 4, 6, 3)
        assert ResNetConfig(depth=101).stage_blocks == (3, 4, 23, 3)
        assert ResNetConfig(depth=152).stage_blocks == (3, 8, 36, 3)
        with pytest.raises(ValueError):
            ResNetConfig(depth=34).stage_blocks

    def test_structure(self, tiny_resnet):
        validate_graph(tiny_resnet)
        assert "stem.conv" in tiny_resnet.tasks
        assert "head.loss" in tiny_resnet.tasks
        # downsample shortcut on every stage's first block
        for stage in range(4):
            assert f"stage{stage}.block0.downsample" in tiny_resnet.tasks
        # no downsample inside later blocks
        assert "stage0.block1.downsample" not in tiny_resnet.tasks

    def test_task_count_matches_depth(self):
        g50 = build_resnet(ResNetConfig(depth=50, width_factor=1, image_size=64))
        g101 = build_resnet(ResNetConfig(depth=101, width_factor=1, image_size=64))
        assert len(g101.tasks) > len(g50.tasks)

    def test_width_factor_squares_params(self):
        g1 = build_resnet(ResNetConfig(depth=50, width_factor=1))
        g2 = build_resnet(ResNetConfig(depth=50, width_factor=2))
        ratio = g2.num_parameters() / g1.num_parameters()
        assert 3.3 < ratio < 4.0  # conv params scale ~wf^2

    def test_fig5_configs(self):
        assert [c.name for c in FIG5_RESNETS] == [
            "resnet50x8", "resnet101x8", "resnet152x8",
        ]


class TestGPT:
    def test_gpt2_small_params(self):
        g = build_gpt(GPTConfig())
        # GPT-2 small is ~124M params (wte+wpe+12 layers)
        assert abs(g.num_parameters() - 124e6) / 124e6 < 0.05

    def test_structure(self):
        g = build_gpt(GPTConfig(hidden_size=32, num_layers=2, num_heads=4,
                                seq_len=8, vocab_size=50))
        validate_graph(g)
        assert "lm_head.weight_t" in g.tasks  # tied output projection
        assert g.tasks["layer0.ln1"].op_type == "layernorm"  # pre-LN


class TestToyModels:
    def test_mlp_widths(self):
        g = build_mlp((4, 8, 2))
        validate_graph(g)
        assert g.values["fc0.weight"].shape == (8, 4)
        assert g.values["fc1.weight"].shape == (2, 8)

    def test_mlp_rejects_short_widths(self):
        with pytest.raises(ValueError):
            build_mlp((4,))

    def test_diamond_branches(self, diamond_graph):
        validate_graph(diamond_graph)
        merge = diamond_graph.tasks["merge"]
        assert len(merge.inputs) == 2

    def test_fig2_constant_tasks(self, fig2_graph):
        validate_graph(fig2_graph)
        # the two weight transposes take only params as inputs
        for t in ("transpose_w1", "transpose_w3"):
            task = fig2_graph.tasks[t]
            assert all(
                fig2_graph.values[v].producer is None for v in task.inputs
            )

    def test_shared_constant_two_consumers(self):
        g = build_shared_constant()
        validate_graph(g)
        out = g.tasks["transpose_w"].outputs[0]
        assert len(g.values[out].consumers) == 2
