"""Link-level topology construction and deterministic routing."""

import pytest

from repro.comm.topology import NetworkTopology, Route
from repro.hardware.presets import paper_cluster, tiny_cluster


class TestConstruction:
    def test_single_node_link_count(self):
        # 8 GPUs full mesh: 8*7 directed NVLinks; 8 gpu<->nic pci pairs;
        # no uplink on a single-node cluster
        topo = NetworkTopology(paper_cluster(1))
        assert topo.num_links() == 8 * 7 + 2 * 8

    def test_multi_node_link_count(self):
        topo = NetworkTopology(paper_cluster(2))
        per_node = 8 * 7 + 2 * 8 + 2  # mesh + pci + uplink/downlink
        assert topo.num_links() == 2 * per_node

    def test_link_bandwidth_tiers(self):
        cl = paper_cluster(2)
        topo = NetworkTopology(cl)
        assert topo.link("gpu:0", "gpu:1").bandwidth == cl.intra_node_bandwidth
        assert topo.link("gpu:0", "gpu:1").kind == "nvlink"
        assert topo.link("nic:0:0", "switch").bandwidth == (
            cl.inter_node_bandwidth
        )
        assert topo.link("nic:0:0", "switch").kind == "uplink"

    def test_multiple_nics_split_uplink(self):
        cl = tiny_cluster(num_nodes=2, devices_per_node=4, nic_count=2)
        topo = NetworkTopology(cl)
        assert topo.link("nic:0:0", "switch").bandwidth == (
            cl.inter_node_bandwidth / 2
        )
        # local ranks round-robin over the node's NICs
        assert topo.nic_of(0) == "nic:0:0"
        assert topo.nic_of(1) == "nic:0:1"
        assert topo.nic_of(2) == "nic:0:0"
        assert topo.nic_of(5) == "nic:1:1"

    def test_constrained_mesh_drops_links(self):
        full = NetworkTopology(tiny_cluster(num_nodes=1, devices_per_node=4))
        ring = NetworkTopology(
            tiny_cluster(num_nodes=1, devices_per_node=4, nvlink_degree=2)
        )
        assert ring.num_links() < full.num_links()
        # radius 1: neighbours linked, opposite corners are not
        assert ("gpu:0", "gpu:1") in ring.links
        assert ("gpu:0", "gpu:2") not in ring.links


class TestRouting:
    def test_self_route_is_empty(self):
        topo = NetworkTopology(paper_cluster(1))
        route = topo.route(3, 3)
        assert route.links == ()
        assert route.time(1e6, 10e-6) == 0.0

    def test_same_node_single_nvlink_hop(self):
        topo = NetworkTopology(paper_cluster(2))
        route = topo.route(1, 6)
        assert route.hops == 1
        assert route.links[0].kind == "nvlink"

    def test_cross_node_via_nic_and_switch(self):
        topo = NetworkTopology(paper_cluster(2))
        route = topo.route(0, 9)
        assert [link.kind for link in route.links] == [
            "pci", "uplink", "downlink", "pci"
        ]
        assert route.bottleneck_bandwidth == (
            topo.cluster.inter_node_bandwidth
        )

    def test_constrained_mesh_multi_hop(self):
        topo = NetworkTopology(
            tiny_cluster(num_nodes=1, devices_per_node=4, nvlink_degree=2)
        )
        route = topo.route(0, 2)
        assert route.hops == 2
        assert all(link.kind == "nvlink" for link in route.links)
        # the bottleneck is still the NVLink rate; latency charged once
        cl = topo.cluster
        assert topo.p2p_time(0, 2, 1e6) == (
            cl.comm_latency + 1e6 / cl.intra_node_bandwidth
        )

    def test_routes_are_deterministic(self):
        topo = NetworkTopology(paper_cluster(4))
        for src, dst in [(0, 1), (0, 9), (13, 30), (31, 0)]:
            assert topo.route(src, dst) == topo.route(src, dst)

    def test_empty_route_bottleneck_is_infinite(self):
        assert Route(()).bottleneck_bandwidth == float("inf")


class TestP2PParity:
    @pytest.mark.parametrize("nbytes", [1.0, 4096.0, 1e8])
    def test_matches_flat_closed_forms_on_default_presets(self, nbytes):
        cl = paper_cluster(2)
        topo = NetworkTopology(cl)
        intra = cl.comm_latency + nbytes / cl.intra_node_bandwidth
        inter = cl.comm_latency + nbytes / cl.inter_node_bandwidth
        assert topo.p2p_time(0, 1, nbytes) == intra
        assert topo.p2p_time(0, 8, nbytes) == inter
