"""The CommModel layer: flat delegation parity, representative-group
fallbacks, the model factory cache, and the boundary-tier helpers used
by the pipeline baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.model import (
    COMM_MODELS,
    FlatCommModel,
    TopologyCommModel,
    boundary_internode,
    comm_model_for,
    stage_boundary_p2p_times,
)
from repro.hardware.presets import paper_cluster, tiny_cluster

nbytes_st = st.floats(min_value=1.0, max_value=1e12,
                      allow_nan=False, allow_infinity=False)


class TestFlatDelegation:
    """``ClusterSpec.p2p_time``/``allreduce_time`` now delegate through
    ``repro.comm``; under the default flat model they must equal the
    historical closed forms bit for bit."""

    @given(nbytes=nbytes_st, n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_cluster_methods_equal_legacy_arithmetic(self, nbytes, n):
        cl = paper_cluster(4)
        assert cl.comm_model == "flat"
        assert cl.p2p_time(nbytes) == (
            cl.comm_latency + nbytes / cl.intra_node_bandwidth
        )
        assert cl.p2p_time(nbytes, same_node=False) == (
            cl.comm_latency + nbytes / cl.inter_node_bandwidth
        )
        for spans, bw in (
            (True, cl.inter_node_bandwidth),
            (False, cl.intra_node_bandwidth),
        ):
            assert cl.allreduce_time(nbytes, n, spans_nodes=spans) == (
                cl.comm_latency * 2 * (n - 1)
                + (2.0 * (n - 1) / n) * nbytes / bw
            )

    def test_single_rank_allreduce_is_free(self):
        assert paper_cluster(1).allreduce_time(1e8, 1) == 0.0

    @given(nbytes=nbytes_st)
    @settings(max_examples=50, deadline=None)
    def test_topology_p2p_affine_matches_flat_on_uniform_presets(self, nbytes):
        cl = paper_cluster(2)
        flat, topo = FlatCommModel(cl), TopologyCommModel(cl)
        for same in (True, False):
            assert topo.p2p_affine(same) == flat.p2p_affine(same)
            assert topo.p2p_time(nbytes, same) == flat.p2p_time(nbytes, same)


class TestTopologyModel:
    def test_rank_p2p_uses_actual_route(self):
        cl = paper_cluster(2).with_comm_model("topology")
        model = cl.comm
        assert model.rank_p2p_time(0, 1, 1e6) == (
            cl.comm_latency + 1e6 / cl.intra_node_bandwidth
        )
        assert model.rank_p2p_time(0, 8, 1e6) == (
            cl.comm_latency + 1e6 / cl.inter_node_bandwidth
        )
        assert model.rank_p2p_time(5, 5, 1e6) == 0.0

    def test_allreduce_reports_algorithm(self):
        cl = paper_cluster(4).with_comm_model("topology")
        cost = cl.comm.allreduce(1e8, range(32))
        assert cost.algorithm == "hierarchical"
        assert cost.n_ranks == 32

    def test_spanning_group_falls_back_to_flat_on_one_node(self):
        # a single-node cluster cannot host a node-spanning group; the
        # legacy closed form is the conservative answer
        cl = tiny_cluster(num_nodes=1, devices_per_node=4,
                          comm_model="topology")
        topo, flat = TopologyCommModel(cl), FlatCommModel(cl)
        assert topo.allreduce_time(1e8, 4, spans_nodes=True) == (
            flat.allreduce_time(1e8, 4, spans_nodes=True)
        )

    def test_oversized_group_falls_back_to_flat(self):
        cl = tiny_cluster(num_nodes=2, devices_per_node=2,
                          comm_model="topology")
        topo, flat = TopologyCommModel(cl), FlatCommModel(cl)
        assert topo.allreduce_time(1e8, 16, spans_nodes=True) == (
            flat.allreduce_time(1e8, 16, spans_nodes=True)
        )

    def test_topology_never_beats_physics(self):
        # modeled allreduce under topology >= the best closed form could
        # ever claim: the payload still crosses the slowest tier
        cl = paper_cluster(4)
        topo = TopologyCommModel(cl)
        t = topo.allreduce_time(1e8, 32, spans_nodes=True)
        assert t > 0.0


class TestFactory:
    def test_factory_caches_per_cluster(self):
        cl = paper_cluster(2)
        assert comm_model_for(cl) is comm_model_for(paper_cluster(2))

    def test_factory_dispatches_on_comm_model(self):
        assert isinstance(comm_model_for(paper_cluster(2)), FlatCommModel)
        assert isinstance(
            comm_model_for(paper_cluster(2, comm_model="topology")),
            TopologyCommModel,
        )
        assert set(COMM_MODELS) == {"flat", "topology"}

    def test_with_comm_model_is_identity_when_unchanged(self):
        cl = paper_cluster(2)
        assert cl.with_comm_model("flat") is cl
        topo = cl.with_comm_model("topology")
        assert topo.comm_model == "topology"
        assert topo.num_nodes == cl.num_nodes

    def test_cluster_validates_comm_knobs(self):
        with pytest.raises(ValueError):
            paper_cluster(2, comm_model="quantum")
        with pytest.raises(ValueError):
            paper_cluster(2, nvlink_degree=0)
        with pytest.raises(ValueError):
            paper_cluster(2, nic_count=0)


class TestBoundaryHelpers:
    def test_boundary_internode_detects_node_crossings(self):
        cl = paper_cluster(4)
        # 16 single-device stages x 2 replicas: each replica owns 16
        # contiguous ranks (2 nodes); only the boundary after stage 7
        # crosses a node boundary
        counts = [1] * 16
        for b in range(15):
            expected = b == 7
            assert boundary_internode(cl, counts, 2, b) is expected

    def test_last_boundary_is_never_internode(self):
        cl = paper_cluster(2)
        assert boundary_internode(cl, [8, 8], 1, 1) is False

    def test_stage_boundary_p2p_times_price_each_tier(self):
        cl = paper_cluster(2)
        counts = [8, 8]  # stage boundary == node boundary
        out_b, in_b = 1e6, 2e6
        send0, recv0 = stage_boundary_p2p_times(cl, counts, 1, 0, out_b, in_b)
        send1, recv1 = stage_boundary_p2p_times(cl, counts, 1, 1, out_b, in_b)
        # stage 0 sends across the node boundary; its input edge (data
        # loading) keeps the same-node convention
        assert send0 == cl.p2p_time(out_b, same_node=False)
        assert recv0 == cl.p2p_time(in_b, same_node=True)
        # stage 1's backward gradient crosses back over IB; its output
        # (the loss) stays local
        assert send1 == cl.p2p_time(out_b, same_node=True)
        assert recv1 == cl.p2p_time(in_b, same_node=False)

    def test_zero_bytes_cost_nothing(self):
        cl = paper_cluster(2)
        assert stage_boundary_p2p_times(cl, [8, 8], 1, 0, 0.0, 0.0) == (
            0.0, 0.0
        )
