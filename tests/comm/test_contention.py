"""Contention simulator: max-min fair sharing, event ordering, and the
bandwidth-conservation makespan bound."""

import pytest

from repro.comm.collectives import CollectiveCost, allreduce_cost
from repro.comm.contention import (
    Transfer,
    concurrent_makespan,
    simulate_transfers,
)
from repro.comm.topology import NetworkTopology
from repro.hardware.presets import paper_cluster

TOPO = NetworkTopology(paper_cluster(2))
NBYTES = 1e8


class TestSimulateTransfers:
    def test_single_transfer_matches_uncontended_model(self):
        (res,) = simulate_transfers(TOPO, [Transfer(0, 8, NBYTES)])
        assert res.finish == pytest.approx(
            TOPO.p2p_time(0, 8, NBYTES), rel=1e-9
        )
        assert res.slowdown == pytest.approx(1.0, rel=1e-9)

    def test_two_flows_sharing_an_uplink_halve(self):
        # both transfers leave node 0 through the same NIC uplink, so
        # each streams at half the IB rate (latency is paid once, which
        # keeps the slowdown a hair under 2.0)
        cl = TOPO.cluster
        results = simulate_transfers(
            TOPO, [Transfer(0, 8, NBYTES), Transfer(1, 9, NBYTES)]
        )
        expected = cl.comm_latency + NBYTES / (cl.inter_node_bandwidth / 2)
        for res in results:
            assert res.finish == pytest.approx(expected, rel=1e-9)
            assert res.slowdown == pytest.approx(2.0, rel=1e-2)

    def test_disjoint_routes_do_not_interfere(self):
        # NVLink transfers inside different nodes share nothing
        results = simulate_transfers(
            TOPO, [Transfer(0, 1, NBYTES), Transfer(8, 9, NBYTES)]
        )
        for res in results:
            assert res.slowdown == pytest.approx(1.0, rel=1e-9)

    def test_staggered_arrivals_do_not_contend(self):
        solo = TOPO.p2p_time(0, 8, NBYTES)
        late_start = solo * 2
        results = simulate_transfers(
            TOPO,
            [Transfer(0, 8, NBYTES), Transfer(1, 9, NBYTES, start=late_start)],
        )
        assert results[0].slowdown == pytest.approx(1.0, rel=1e-9)
        assert results[1].slowdown == pytest.approx(1.0, rel=1e-9)
        assert results[1].finish == pytest.approx(
            late_start + solo, rel=1e-9
        )

    def test_partial_overlap_slows_only_the_overlap(self):
        # second transfer starts halfway through the first; both see
        # some contention but strictly less than a full 2x
        solo = TOPO.p2p_time(0, 8, NBYTES)
        results = simulate_transfers(
            TOPO,
            [Transfer(0, 8, NBYTES), Transfer(1, 9, NBYTES, start=solo / 2)],
        )
        assert 1.0 < results[0].slowdown < 2.0
        assert 1.0 < results[1].slowdown < 2.0

    def test_zero_and_self_transfers_finish_immediately(self):
        results = simulate_transfers(
            TOPO,
            [Transfer(0, 0, NBYTES, start=1.0), Transfer(0, 8, 0.0, start=2.0)],
        )
        assert results[0].finish == 1.0
        assert results[1].finish == 2.0
        assert all(r.slowdown == 1.0 for r in results)

    def test_results_preserve_input_order(self):
        transfers = [Transfer(0, 8, NBYTES, tag=f"t{i}") for i in range(3)]
        results = simulate_transfers(TOPO, transfers)
        assert [r.transfer.tag for r in results] == ["t0", "t1", "t2"]

    def test_three_flows_share_fairly(self):
        cl = TOPO.cluster
        results = simulate_transfers(
            TOPO, [Transfer(i, 8 + i, NBYTES) for i in range(3)]
        )
        expected = cl.comm_latency + NBYTES / (cl.inter_node_bandwidth / 3)
        for res in results:
            assert res.finish == pytest.approx(expected, rel=1e-9)
            assert res.slowdown == pytest.approx(3.0, rel=1e-2)


class TestConcurrentMakespan:
    def test_empty_phase_is_free(self):
        assert concurrent_makespan([]) == 0.0

    def test_single_collective_is_its_own_time(self):
        cost = allreduce_cost(TOPO, range(16), NBYTES)
        assert concurrent_makespan([cost]) == cost.time

    def test_shared_link_serializes_bytes(self):
        cost = allreduce_cost(TOPO, range(16), NBYTES, algorithm="ring")
        span = concurrent_makespan([cost, cost])
        # both rings schedule their bytes over the same uplinks, so the
        # busiest link must stream twice the seconds
        assert span == pytest.approx(2 * cost.max_link_seconds, rel=1e-9)
        assert span >= cost.time

    def test_disjoint_collectives_run_at_solo_speed(self):
        left = allreduce_cost(TOPO, range(4), NBYTES)  # node-0 NVLink only
        right = allreduce_cost(TOPO, range(8, 12), NBYTES)
        assert concurrent_makespan([left, right]) == max(left.time, right.time)

    def test_latency_floor_applies(self):
        cost = CollectiveCost(
            op="allreduce", algorithm="ring", time=1.0, nbytes=1.0,
            n_ranks=2, link_seconds={"l": 3.0},
        )
        assert concurrent_makespan([cost], latency=0.5) == 3.5
