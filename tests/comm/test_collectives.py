"""Collective cost models: flat-model parity, monotonicity properties,
algorithm applicability, and automatic cheapest-algorithm selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.collectives import (
    ALLREDUCE_ALGORITHMS,
    allreduce_cost,
    broadcast_cost,
    halving_doubling_allreduce_cost,
    hierarchical_allreduce_cost,
    p2p_cost,
    ring_allreduce_cost,
)
from repro.comm.model import FlatCommModel
from repro.comm.topology import NetworkTopology
from repro.hardware.presets import paper_cluster

TOPO_1 = NetworkTopology(paper_cluster(1))
TOPO_4 = NetworkTopology(paper_cluster(4))
FLAT_4 = FlatCommModel(paper_cluster(4))

nbytes_st = st.floats(min_value=1.0, max_value=1e12,
                      allow_nan=False, allow_infinity=False)


def spanning_group(n):
    """Round-robin rank group over the 4 nodes of ``paper_cluster(4)``
    (the representative placement of the legacy ``spans_nodes=True``)."""
    cl = TOPO_4.cluster
    return [
        (i % cl.num_nodes) * cl.devices_per_node + i // cl.num_nodes
        for i in range(n)
    ]


class TestFlatParity:
    """On the uniform default presets, the topology model's *ring*
    algorithm must reproduce the legacy closed forms exactly (bit
    equality, not approx): same latency charge, same bandwidth, same
    expression."""

    @given(nbytes=nbytes_st, n=st.integers(min_value=2, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_intra_node_ring_equals_legacy_closed_form(self, nbytes, n):
        cost = ring_allreduce_cost(TOPO_4, range(n), nbytes)
        assert cost.time == FLAT_4.allreduce_time(
            nbytes, n, spans_nodes=False
        )

    @given(nbytes=nbytes_st, n=st.integers(min_value=2, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_spanning_ring_equals_legacy_closed_form(self, nbytes, n):
        cost = ring_allreduce_cost(TOPO_4, spanning_group(n), nbytes)
        assert cost.time == FLAT_4.allreduce_time(
            nbytes, n, spans_nodes=True
        )

    @given(nbytes=nbytes_st)
    @settings(max_examples=50, deadline=None)
    def test_p2p_equals_legacy_closed_form(self, nbytes):
        same = p2p_cost(TOPO_4, 0, 1, nbytes)
        cross = p2p_cost(TOPO_4, 0, 8, nbytes)
        assert same.time == FLAT_4.p2p_time(nbytes, same_node=True)
        assert cross.time == FLAT_4.p2p_time(nbytes, same_node=False)


class TestMonotonicity:
    """Every collective cost is monotone non-decreasing in ``nbytes``;
    each fixed algorithm is monotone non-decreasing in ``n_ranks`` over
    its applicability domain."""

    @given(a=nbytes_st, b=nbytes_st, n=st.integers(min_value=2, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_costs_monotone_in_nbytes(self, a, b, n):
        lo, hi = sorted((a, b))
        group = spanning_group(n)
        assert allreduce_cost(TOPO_4, group, lo).time <= (
            allreduce_cost(TOPO_4, group, hi).time
        )
        assert ring_allreduce_cost(TOPO_4, group, lo).time <= (
            ring_allreduce_cost(TOPO_4, group, hi).time
        )
        assert broadcast_cost(TOPO_4, group, lo).time <= (
            broadcast_cost(TOPO_4, group, hi).time
        )
        assert p2p_cost(TOPO_4, 0, n - 1, lo).time <= (
            p2p_cost(TOPO_4, 0, n - 1, hi).time
        )

    @given(nbytes=nbytes_st, n=st.integers(min_value=1, max_value=31))
    @settings(max_examples=50, deadline=None)
    def test_ring_monotone_in_ranks(self, nbytes, n):
        smaller = ring_allreduce_cost(TOPO_4, spanning_group(n), nbytes)
        larger = ring_allreduce_cost(TOPO_4, spanning_group(n + 1), nbytes)
        assert smaller.time <= larger.time

    @given(nbytes=nbytes_st, k=st.integers(min_value=1, max_value=2))
    @settings(max_examples=50, deadline=None)
    def test_halving_doubling_monotone_in_ranks(self, nbytes, k):
        smaller = halving_doubling_allreduce_cost(
            TOPO_1, range(2 ** k), nbytes
        )
        larger = halving_doubling_allreduce_cost(
            TOPO_1, range(2 ** (k + 1)), nbytes
        )
        assert smaller.time <= larger.time

    @given(nbytes=nbytes_st, n=st.integers(min_value=2, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_broadcast_monotone_in_ranks(self, nbytes, n):
        assert broadcast_cost(TOPO_1, range(n), nbytes).time <= (
            broadcast_cost(TOPO_1, range(n + 1), nbytes).time
        )


class TestApplicability:
    def test_halving_doubling_requires_power_of_two(self):
        assert halving_doubling_allreduce_cost(TOPO_1, range(6), 1e6) is None
        assert halving_doubling_allreduce_cost(TOPO_1, range(8), 1e6) is not None

    def test_hierarchical_requires_multiple_nodes(self):
        assert hierarchical_allreduce_cost(TOPO_1, range(8), 1e6) is None

    def test_hierarchical_requires_equal_membership(self):
        # 3 ranks on node 0, 1 rank on node 1
        assert hierarchical_allreduce_cost(
            TOPO_4, [0, 1, 2, 8], 1e6
        ) is None
        # 2 + 2 is fine
        cost = hierarchical_allreduce_cost(TOPO_4, [0, 1, 8, 9], 1e6)
        assert cost is not None
        assert cost.algorithm == "hierarchical"

    def test_forcing_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown allreduce"):
            allreduce_cost(TOPO_4, range(4), 1e6, algorithm="butterfly")

    def test_forcing_inapplicable_algorithm_raises(self):
        with pytest.raises(ValueError, match="not applicable"):
            allreduce_cost(TOPO_1, range(6), 1e6,
                           algorithm="halving_doubling")

    def test_trivial_groups_cost_nothing(self):
        assert allreduce_cost(TOPO_4, [3], 1e6).time == 0.0
        assert ring_allreduce_cost(TOPO_4, range(4), 0.0).time == 0.0
        assert p2p_cost(TOPO_4, 2, 2, 1e6).time == 0.0
        assert broadcast_cost(TOPO_4, [5], 1e6).time == 0.0


class TestSelection:
    def test_selection_reports_the_winner(self):
        cost = allreduce_cost(TOPO_4, range(TOPO_4.cluster.total_devices), 1e8)
        assert cost.algorithm in ALLREDUCE_ALGORITHMS
        for name in ALLREDUCE_ALGORITHMS:
            try:
                forced = allreduce_cost(
                    TOPO_4, range(TOPO_4.cluster.total_devices), 1e8,
                    algorithm=name,
                )
            except ValueError:
                continue
            assert cost.time <= forced.time

    def test_hierarchical_wins_large_multi_node_groups(self):
        # the paper's DP-allreduce regime: every rank of a 4-node
        # cluster, gradient-sized payload -> NCCL-style hierarchical
        # beats one flat ring over the IB tier
        cost = allreduce_cost(TOPO_4, range(32), 1e8)
        assert cost.algorithm == "hierarchical"
        assert cost.time < ring_allreduce_cost(TOPO_4, range(32), 1e8).time

    def test_halving_doubling_wins_intra_node(self):
        cost = allreduce_cost(TOPO_1, range(8), 1e8)
        assert cost.algorithm == "halving_doubling"

    def test_ring_wins_exact_ties(self):
        # for n=2, ring (2 steps of nbytes/2) and halving-doubling (one
        # exchange round each way) cost the same; the first-listed
        # candidate must win so reported algorithms are deterministic
        ring = ring_allreduce_cost(TOPO_1, [0, 1], 1e6)
        hd = halving_doubling_allreduce_cost(TOPO_1, [0, 1], 1e6)
        assert ring.time == hd.time
        assert allreduce_cost(TOPO_1, [0, 1], 1e6).algorithm == "ring"

    def test_link_seconds_cover_used_fabric(self):
        cost = allreduce_cost(TOPO_4, range(32), 1e8, algorithm="ring")
        assert cost.link_seconds
        assert any("switch" in name for name in cost.link_seconds)
        assert cost.max_link_seconds > 0.0
