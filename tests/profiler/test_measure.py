"""Calibration tests: the analytic cost model must order subcomponents the
way real (NumPy) execution does."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.hardware import paper_cluster
from repro.models import build_mlp
from repro.profiler import GraphProfiler
from repro.profiler.measure import (
    MeasuredProfile,
    measure_subgraph,
    rank_correlation,
)


def staircase_graph():
    """Layers of sharply increasing cost (widths 16 -> 256)."""
    b = GraphBuilder("staircase")
    x = b.input("x", (1, 16))
    h = x
    for i, width in enumerate((16, 32, 64, 128, 256)):
        h = b.linear(h, width, name=f"fc{i}")
        h = b.op("gelu", [h], name=f"act{i}")
    y = b.input("y", (1, 256))
    loss = b.op("mse_loss", [h, y], name="loss")
    return b.finish([loss])


class TestMeasure:
    def test_returns_positive_times(self):
        g = build_mlp((16, 32, 8))
        prof = measure_subgraph(g, list(g.tasks), batch_size=4)
        assert prof.time_fwd > 0 and prof.time_bwd > 0
        assert prof.param_bytes > 0 and prof.activation_bytes > 0

    def test_subgraph_measurement(self):
        g = build_mlp((16, 32, 8))
        prof = measure_subgraph(g, ["fc0", "act0"], batch_size=2)
        whole = measure_subgraph(g, list(g.tasks), batch_size=2)
        assert prof.param_bytes < whole.param_bytes

    def test_int_inputs_synthesized(self, tiny_bert):
        # embeddings take int64 ids: synthesis must stay in range
        prof = measure_subgraph(
            tiny_bert, ["embeddings.word_lookup"], batch_size=2
        )
        assert prof.time_fwd > 0


class TestRankCorrelation:
    def test_perfect(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_inverted(self):
        assert rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            rank_correlation([1], [1])

    def test_constant_sequences(self):
        assert rank_correlation([1.0, 1.0], [2.0, 2.0]) == 1.0


class TestCalibration:
    def test_analytic_ranks_like_measured(self):
        """The partitioner only needs the analytic oracle to ORDER
        candidate subcomponents like real execution; check Spearman
        correlation on a staircase of increasingly heavy layers."""
        g = staircase_graph()
        profiler = GraphProfiler(g, paper_cluster())
        analytic, measured = [], []
        prefixes = []
        tasks = list(g.tasks)
        for end in range(2, len(tasks) + 1, 2):
            prefixes.append(tasks[:end])
        for prefix in prefixes:
            analytic.append(profiler.profile(prefix, 64).time_fwd)
            measured.append(
                measure_subgraph(g, prefix, batch_size=64, repeats=3).time_fwd
            )
        rho = rank_correlation(analytic, measured)
        assert rho > 0.8, (analytic, measured)

    def test_bwd_heavier_in_both_models(self):
        g = staircase_graph()
        profiler = GraphProfiler(g, paper_cluster())
        a = profiler.profile(list(g.tasks), 256)
        m = measure_subgraph(g, list(g.tasks), batch_size=256, repeats=5)
        assert a.time_bwd > a.time_fwd
        # wall-clock timing of small kernels is noisy: require the
        # backward to be at least comparable, not strictly heavier
        assert m.time_bwd > 0.7 * m.time_fwd
