"""Tests for the GraphProfiler oracle (profile(U, bs) -> (t_f, t_b, m))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Precision, paper_cluster
from repro.profiler import GraphProfiler


class TestProfileBasics:
    def test_whole_graph(self, bert_profiler, tiny_bert):
        r = bert_profiler.profile(list(tiny_bert.tasks), 4)
        assert r.time_fwd > 0 and r.time_bwd > r.time_fwd
        assert r.param_count == tiny_bert.num_parameters()
        assert r.memory > 0

    def test_additivity_of_disjoint_parts(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)
        half = len(tasks) // 2
        r1 = bert_profiler.profile(tasks[:half], 4)
        r2 = bert_profiler.profile(tasks[half:], 4)
        whole = bert_profiler.profile(tasks, 4)
        assert r1.time_fwd + r2.time_fwd == pytest.approx(whole.time_fwd)
        assert r1.time_bwd + r2.time_bwd == pytest.approx(whole.time_bwd)

    def test_checkpointing_adds_recompute(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)
        plain = bert_profiler.profile(tasks, 4, checkpointing=False)
        ckpt = bert_profiler.profile(tasks, 4, checkpointing=True)
        assert ckpt.time_bwd == pytest.approx(plain.time_bwd + plain.time_fwd)
        assert ckpt.time_fwd == pytest.approx(plain.time_fwd)

    def test_batch_floor(self, bert_profiler, tiny_bert):
        r0 = bert_profiler.profile(list(tiny_bert.tasks), 0)
        r1 = bert_profiler.profile(list(tiny_bert.tasks), 1)
        assert r0.time_fwd == r1.time_fwd  # clamped to >= 1

    def test_monotone_in_batch(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)
        times = [bert_profiler.profile(tasks, b).time_fwd for b in (1, 2, 4, 8)]
        assert times == sorted(times)

    def test_tied_params_counted_once(self, bert_profiler, tiny_bert):
        # embeddings.word consumed by the lookup AND the decoder transpose
        r = bert_profiler.profile(list(tiny_bert.tasks), 1)
        assert r.param_count == tiny_bert.num_parameters()


class TestMemoization:
    def test_cache_hits(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)
        bert_profiler.profile(tasks, 4, key="whole")
        calls = bert_profiler.profile_calls
        bert_profiler.profile(tasks, 4, key="whole")
        assert bert_profiler.profile_calls == calls
        assert bert_profiler.cache_hits >= 1

    def test_different_batch_not_conflated(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)
        a = bert_profiler.profile(tasks, 2, key="whole")
        b = bert_profiler.profile(tasks, 4, key="whole")
        assert a.time_fwd != b.time_fwd

    def test_no_key_no_cache(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)
        before = len(bert_profiler._cache)
        bert_profiler.profile(tasks, 4)
        assert len(bert_profiler._cache) == before

    def test_stats(self, bert_profiler, tiny_bert):
        bert_profiler.profile(list(tiny_bert.tasks), 2, key="k")
        stats = bert_profiler.stats()
        assert stats["profile_calls"] >= 1
        assert stats["cached_entries"] >= 1


class TestBoundaryBytes:
    def test_prefix_boundary_scales_with_batch(self, bert_profiler, tiny_bert):
        tasks = list(tiny_bert.tasks)[:10]
        in1, out1 = bert_profiler.boundary_bytes(tasks, 1)
        in4, out4 = bert_profiler.boundary_bytes(tasks, 4)
        assert in4 == pytest.approx(4 * in1)
        assert out4 == pytest.approx(4 * out1)

    def test_params_excluded_from_in_bytes(self, bert_profiler, tiny_bert):
        # a single linear layer's boundary input excludes its weights
        in_bytes, _ = bert_profiler.boundary_bytes(["layer0.attn.q"], 1)
        x = tiny_bert.values[tiny_bert.tasks["layer0.attn.q"].inputs[0]]
        assert in_bytes == x.nbytes(1)

    def test_amp_halves_float_boundary(self, tiny_bert, cluster):
        p32 = GraphProfiler(tiny_bert, cluster, Precision.FP32)
        pamp = GraphProfiler(tiny_bert, cluster, Precision.AMP)
        tasks = ["layer0.attn.q"]
        assert pamp.boundary_bytes(tasks, 2)[0] == pytest.approx(
            0.5 * p32.boundary_bytes(tasks, 2)[0]
        )

    def test_int_boundary_not_halved(self, tiny_bert, cluster):
        pamp = GraphProfiler(tiny_bert, cluster, Precision.AMP)
        # the word-lookup consumes int64 ids: AMP does not shrink them
        in_bytes, _ = pamp.boundary_bytes(["embeddings.word_lookup"], 1)
        ids = tiny_bert.values["input_ids"]
        assert in_bytes == ids.nbytes(1)

    def test_comm_time(self, bert_profiler):
        assert bert_profiler.comm_time(0) == 0.0
        assert bert_profiler.comm_time(25e9) == pytest.approx(
            1.0 + bert_profiler.cluster.comm_latency
        )


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=16),
    split=st.floats(min_value=0.1, max_value=0.9),
)
def test_profile_subset_never_exceeds_whole(batch, split):
    """Property: any subset's time/params are bounded by the whole graph's."""
    from repro.models import build_mlp

    g = build_mlp((8, 16, 16, 4))
    p = GraphProfiler(g, paper_cluster())
    tasks = list(g.tasks)
    cut = max(1, int(len(tasks) * split))
    sub = p.profile(tasks[:cut], batch)
    whole = p.profile(tasks, batch)
    assert sub.time_fwd <= whole.time_fwd + 1e-12
    assert sub.param_count <= whole.param_count
