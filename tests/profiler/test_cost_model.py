"""Tests for the per-op cost model (roofline times, cost coefficients)."""

import pytest

from repro.hardware import Precision, V100, paper_cluster
from repro.profiler.cost_model import FREE_OPS, MATMUL_OPS, CostModel


@pytest.fixture
def model():
    return CostModel(V100, Precision.FP32)


class TestTaskCost:
    def test_matmul_classified(self, model, mlp_graph):
        cost = model.task_cost(mlp_graph, mlp_graph.tasks["fc0"])
        assert cost.is_matmul
        assert cost.fwd_flops > 0
        assert cost.bwd_flops == 2 * cost.fwd_flops
        assert cost.param_count == 16 * 32 + 32

    def test_elementwise_not_matmul(self, model, mlp_graph):
        cost = model.task_cost(mlp_graph, mlp_graph.tasks["act0"])
        assert not cost.is_matmul
        assert cost.param_count == 0

    def test_free_ops_cost_nothing(self, model, tiny_bert):
        task = tiny_bert.tasks["layer0.attn.q_split"]  # reshape
        cost = model.task_cost(tiny_bert, task)
        assert cost.is_free
        assert model.fwd_time(cost, 8) == 0.0
        assert model.bwd_time(cost, 8) == 0.0
        assert cost.saved_bytes == 0.0

    def test_act_vs_param_bytes(self, model, mlp_graph):
        cost = model.task_cost(mlp_graph, mlp_graph.tasks["fc0"])
        # x (1,16) in + out (1,32): batched activations
        assert cost.act_bytes == (16 + 32) * 4
        # W (32,16) + b (32,): parameters
        assert cost.param_bytes == (32 * 16 + 32) * 4

    def test_op_sets_disjoint(self):
        assert not (MATMUL_OPS & FREE_OPS)


class TestRooflineTimes:
    def test_large_matmul_compute_bound(self, model):
        from repro.models import build_mlp

        g = build_mlp((1024, 1024, 1024))
        cost = model.task_cost(g, g.tasks["fc0"])
        t = model.fwd_time(cost, 64)
        compute = cost.fwd_flops * 64 / (
            V100.peak_flops_fp32 * V100.matmul_efficiency
        )
        assert t == pytest.approx(compute + V100.kernel_overhead)

    def test_small_op_bandwidth_bound(self, model, mlp_graph):
        cost = model.task_cost(mlp_graph, mlp_graph.tasks["act0"])
        t = model.fwd_time(cost, 1)
        traffic = cost.act_bytes / V100.mem_bandwidth
        assert t == pytest.approx(traffic + V100.kernel_overhead)

    def test_time_monotone_in_batch(self, model, mlp_graph):
        cost = model.task_cost(mlp_graph, mlp_graph.tasks["fc0"])
        times = [model.fwd_time(cost, b) for b in (1, 2, 8, 64)]
        assert times == sorted(times)

    def test_bwd_heavier_than_fwd(self, model, mlp_graph):
        cost = model.task_cost(mlp_graph, mlp_graph.tasks["fc0"])
        assert model.bwd_time(cost, 8) > model.fwd_time(cost, 8)

    def test_amp_speeds_up_matmul(self, mlp_graph):
        fp32 = CostModel(V100, Precision.FP32)
        amp = CostModel(V100, Precision.AMP)
        cost32 = fp32.task_cost(mlp_graph, mlp_graph.tasks["fc0"])
        costamp = amp.task_cost(mlp_graph, mlp_graph.tasks["fc0"])
        assert amp.fwd_time(costamp, 4096) < fp32.fwd_time(cost32, 4096)

    def test_amp_halves_activation_traffic(self):
        fp32 = CostModel(V100, Precision.FP32)
        amp = CostModel(V100, Precision.AMP)
        assert amp._traffic_time(1e9, 0) == pytest.approx(
            0.5 * fp32._traffic_time(1e9, 0)
        )

    def test_activation_nbytes(self, model):
        assert model.activation_nbytes(100.0, 4) == 400.0
        amp = CostModel(V100, Precision.AMP)
        assert amp.activation_nbytes(100.0, 4) == 200.0


class TestWholeBertSanity:
    def test_bert_large_fwd_time_realistic(self, cluster):
        """BERT-Large batch-8 FP32 forward on a V100 is a few hundred ms
        in reality; the analytic model must land in that decade."""
        from repro.models import BertConfig, build_bert
        from repro.profiler import GraphProfiler

        g = build_bert(BertConfig())
        p = GraphProfiler(g, cluster)
        r = p.profile(list(g.tasks), 8)
        assert 0.1 < r.time_fwd < 2.0
        assert 1.5 < r.time_bwd / r.time_fwd < 3.0
