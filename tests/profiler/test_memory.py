"""Tests for the training-memory model, cross-checked against the actual
NumPy runtime's allocations."""

import numpy as np
import pytest

from repro.hardware import Precision
from repro.profiler.memory import MemoryModel, OptimizerKind


class TestStaticBytes:
    def test_adam_fp32(self):
        m = MemoryModel(Precision.FP32, OptimizerKind.ADAM)
        # weights 4 + grads 4 + two moments 8 = 16 B/param
        assert m.static_bytes(1000) == 16_000

    def test_sgd(self):
        m = MemoryModel(Precision.FP32, OptimizerKind.SGD)
        assert m.static_bytes(1000) == 8_000

    def test_sgd_momentum(self):
        m = MemoryModel(Precision.FP32, OptimizerKind.SGD_MOMENTUM)
        assert m.static_bytes(1000) == 12_000

    def test_amp_adds_half_copy(self):
        m = MemoryModel(Precision.AMP, OptimizerKind.ADAM)
        assert m.static_bytes(1000) == 18_000

    def test_matches_runtime_adam_state(self):
        """The analytic 'two FP32 moments' term equals what Adam actually
        allocates."""
        from repro.models import build_mlp
        from repro.runtime import Adam, Executor

        g = build_mlp((8, 16, 4))
        ex = Executor(g, dtype=np.float32)
        opt = Adam()
        loss, grads = ex.loss_and_grads(
            {"x": np.ones((2, 8), np.float32), "y": np.zeros((2, 4), np.float32)}
        )
        opt.step(ex.params, grads)
        expected = 2 * 4 * g.num_parameters()
        assert opt.state_bytes() == expected


class TestActivationBytes:
    def test_no_checkpoint_scales_with_inflight(self):
        m = MemoryModel()
        one = m.activation_bytes(100.0, 10.0, 1, checkpointing=False)
        four = m.activation_bytes(100.0, 10.0, 4, checkpointing=False)
        assert four == 4 * one == 400.0

    def test_checkpoint_stashes_boundary_only(self):
        m = MemoryModel()
        mem = m.activation_bytes(100.0, 10.0, 4, checkpointing=True)
        assert mem == 4 * 10.0 + 100.0

    def test_checkpoint_beats_full_for_deep_stages(self):
        m = MemoryModel()
        # many microbatches in flight: checkpointing must win when the
        # boundary is small relative to the full tape
        full = m.activation_bytes(1000.0, 10.0, 8, checkpointing=False)
        ckpt = m.activation_bytes(1000.0, 10.0, 8, checkpointing=True)
        assert ckpt < full

    def test_inflight_floor(self):
        m = MemoryModel()
        assert m.activation_bytes(100.0, 10.0, 0, False) == 100.0


class TestTotalBytes:
    def test_sum_of_terms(self):
        m = MemoryModel(Precision.FP32, OptimizerKind.ADAM)
        total = m.total_bytes(100, 50.0, 5.0, 2, True)
        assert total == m.static_bytes(100) + m.activation_bytes(50.0, 5.0, 2, True)

    @pytest.mark.parametrize("opt", list(OptimizerKind))
    def test_monotone_in_params(self, opt):
        m = MemoryModel(optimizer=opt)
        assert m.total_bytes(200, 0, 0, 1, False) >= m.total_bytes(
            100, 0, 0, 1, False
        )
