"""Unit tests for the content-addressed artifact store.

Covers the :class:`Artifact` value type, the size estimator behind the
memory LRU, the byte-budgeted :class:`DiskBackend` (shared by artifacts
and the legacy deployment entries), every disk codec's round trip, and
the reuse fix-up hooks.
"""

import os

import numpy as np
import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.planner import (
    ArtifactStore,
    DiskBackend,
    PlannerConfig,
    PlanningContext,
    plan_graph,
)
from repro.planner.context import (
    BLOCKS,
    COMPONENTS,
    DP_CONTEXT,
    EVALUATED,
    SEARCH_RESULT,
)
from repro.planner.store import (
    CODECS,
    Artifact,
    _estimate_nbytes,
    materialize_for_reuse,
)


@pytest.fixture(scope="module")
def planned_ctx():
    """One finished store-less planning run to harvest artifacts from."""
    graph = build_bert(
        BertConfig(hidden_size=256, num_layers=4, num_heads=8)
    )
    ctx = PlanningContext(
        graph, paper_cluster(1), PlannerConfig(batch_size=64)
    )
    plan_graph(graph, ctx.cluster, ctx.config, context=ctx)
    return ctx


class TestArtifact:
    def test_key_is_name_and_fingerprint(self):
        art = Artifact(name="blocks", fingerprint="abcd")
        assert art.key == "blocks:abcd"

    def test_estimate_nbytes(self):
        assert _estimate_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert _estimate_nbytes("hello") == 5
        assert _estimate_nbytes([np.zeros(4, dtype=np.float32)]) == 64 + 16
        # opaque objects get a flat charge, never zero
        assert _estimate_nbytes(object()) > 0


class TestDiskBackend:
    def test_round_trip_and_counters(self, tmp_path):
        backend = DiskBackend(tmp_path)
        assert backend.read_bytes("missing.json") is None
        assert backend.misses == 1
        backend.write_text("a.json", "payload")
        assert backend.read_text("a.json") == "payload"
        assert backend.hits == 1

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.write_bytes("sub/dir/x.bin", b"\x00" * 64)
        names = [p.name for p in (tmp_path / "sub" / "dir").iterdir()]
        assert names == ["x.bin"]

    def test_budget_evicts_least_recently_used(self, tmp_path):
        backend = DiskBackend(tmp_path, byte_budget=250)
        backend.write_bytes("old.bin", b"a" * 100)
        os.utime(tmp_path / "old.bin", (1, 1))  # make it ancient
        backend.write_bytes("mid.bin", b"b" * 100)
        os.utime(tmp_path / "mid.bin", (2, 2))
        backend.write_bytes("new.bin", b"c" * 100)
        assert not (tmp_path / "old.bin").exists()
        assert (tmp_path / "mid.bin").exists()
        assert (tmp_path / "new.bin").exists()
        assert backend.evictions == 1
        assert backend.bytes_used() <= 250

    def test_read_refreshes_recency(self, tmp_path):
        backend = DiskBackend(tmp_path, byte_budget=250)
        backend.write_bytes("a.bin", b"a" * 100)
        backend.write_bytes("b.bin", b"b" * 100)
        for rel in ("a.bin", "b.bin"):
            os.utime(tmp_path / rel, (1, 1))
        backend.read_bytes("a.bin")  # touch: a becomes the youngest
        backend.write_bytes("c.bin", b"c" * 100)
        assert (tmp_path / "a.bin").exists()
        assert not (tmp_path / "b.bin").exists()

    def test_never_evicts_entry_being_written(self, tmp_path):
        backend = DiskBackend(tmp_path, byte_budget=50)
        backend.write_bytes("big.bin", b"x" * 100)
        # over budget but protected: the fresh write must survive
        assert (tmp_path / "big.bin").exists()

    def test_stats_shape(self, tmp_path):
        backend = DiskBackend(tmp_path, byte_budget=1000)
        backend.write_bytes("a.bin", b"a" * 10)
        stats = backend.stats()
        assert stats["bytes"] == 10.0
        assert stats["budget_bytes"] == 1000.0


class TestCodecs:
    @pytest.mark.parametrize("name", [COMPONENTS, BLOCKS, SEARCH_RESULT])
    def test_json_round_trip(self, planned_ctx, name):
        codec = CODECS[name]
        original = planned_ctx.require(name)
        restored = codec.decode(
            codec.encode(original, planned_ctx), planned_ctx
        )
        if name == SEARCH_RESULT:
            assert restored.solution == original.solution
            assert restored.dp_calls == original.dp_calls
            assert restored.replica_factor == original.replica_factor
        else:
            assert restored == original

    def test_dp_context_round_trip(self, planned_ctx):
        codec = CODECS[DP_CONTEXT]
        original = planned_ctx.require(DP_CONTEXT)
        restored = codec.decode(
            codec.encode(original, planned_ctx), planned_ctx
        )
        assert restored.batch_size == original.batch_size
        assert restored.blocks == original.blocks
        a = original.export_cache_state()
        b = restored.export_cache_state()
        assert sorted(a) == sorted(b)
        for key in a:
            # exact equality: the floats travel through npz unmodified
            np.testing.assert_array_equal(a[key], b[key])

    def test_dp_context_size_tracks_cache_state(self, planned_ctx):
        codec = CODECS[DP_CONTEXT]
        dp_ctx = planned_ctx.require(DP_CONTEXT)
        floor = sum(
            arr.nbytes for arr in dp_ctx.export_cache_state().values()
        )
        assert codec.size_of(dp_ctx) >= floor


class TestArtifactStore:
    def test_put_get_and_lru_order(self):
        store = ArtifactStore()
        store.put("blocks", "f1", ["b"])
        art = store.get("blocks", "f1")
        assert art is not None and art.payload == ["b"]
        assert store.get("blocks", "f2") is None
        assert store.hits == 1 and store.misses == 1

    def test_memory_budget_evicts_oldest(self):
        store = ArtifactStore(memory_budget_bytes=250)
        store.put("blocks", "f1", "a" * 100)
        store.put("blocks", "f2", "b" * 100)
        store.put("blocks", "f3", "c" * 100)
        assert store.get("blocks", "f1") is None
        assert store.get("blocks", "f3") is not None
        assert store.memory_evictions >= 1

    def test_last_entry_never_evicted(self):
        store = ArtifactStore(memory_budget_bytes=10)
        store.put("blocks", "f1", "x" * 1000)
        assert store.get("blocks", "f1") is not None

    def test_disk_promotion(self, planned_ctx, tmp_path):
        disk = DiskBackend(tmp_path)
        writer = ArtifactStore(disk=disk)
        writer.put(
            BLOCKS,
            "fp01",
            planned_ctx.require(BLOCKS),
            {"facet:graph": "g"},
            planned_ctx,
        )
        reader = ArtifactStore(disk=disk)
        art = reader.get(BLOCKS, "fp01", planned_ctx)
        assert art is not None
        assert art.payload == planned_ctx.require(BLOCKS)
        assert reader.disk_hits == 1
        # promoted into memory: the second get is a pure memory hit
        reader.get(BLOCKS, "fp01", planned_ctx)
        assert reader.disk_hits == 1

    def test_stats_keep_store_and_backend_hits_apart(self, tmp_path):
        store = ArtifactStore(disk=DiskBackend(tmp_path))
        stats = store.stats()
        assert "disk_hits" in stats and "backend_hits" in stats


class TestMaterializeForReuse:
    def test_plan_is_deep_copied(self, planned_ctx):
        plan = planned_ctx.require(EVALUATED)
        copy1 = materialize_for_reuse(EVALUATED, plan, planned_ctx)
        assert copy1 is not plan
        assert copy1.stages == plan.stages

    def test_blocks_pass_through(self, planned_ctx):
        blocks = planned_ctx.require(BLOCKS)
        assert materialize_for_reuse(BLOCKS, blocks, planned_ctx) is blocks
