"""``VerifyPass`` wiring: on by default after evaluate, disabled by
``PlannerConfig.verify``, skipped (not duplicated) on verified cache
hits; the cache treats truncated or invariant-violating entries as
misses and repairs them with an atomic write."""

import json

import pytest

from repro.hardware import paper_cluster
from repro.partitioner import auto_partition
from repro.planner import (
    VERIFIED,
    PlannerConfig,
    PlanningContext,
    cache_path,
    default_passes,
)
from repro.verify import VerificationReport


def plan_with_ctx(graph, cluster, batch_size, cache_dir=None, **kwargs):
    ctx = PlanningContext(
        graph, cluster,
        PlannerConfig(batch_size=batch_size, cache_dir=cache_dir, **kwargs),
    )
    plan = auto_partition(
        graph, cluster, batch_size, cache_dir=cache_dir, context=ctx,
        **kwargs,
    )
    return plan, ctx


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "deployments"


class TestVerifyPassWiring:
    def test_verify_is_a_default_pass_after_evaluate(self):
        names = [p.name for p in default_passes()]
        assert "verify" in names
        assert names.index("verify") == names.index("evaluate") + 1

    def test_runs_by_default(self, tiny_bert):
        _, ctx = plan_with_ctx(tiny_bert, paper_cluster(), 64)
        event = ctx.events.find("verify")
        assert event.status == "ok"
        assert event.detail["violations"] == 0
        assert event.detail["invariants_checked"] > 0
        report = ctx.get(VERIFIED)
        assert isinstance(report, VerificationReport)
        assert report.ok

    def test_records_metrics_and_span(self, tiny_bert):
        _, ctx = plan_with_ctx(tiny_bert, paper_cluster(), 64)
        assert "verify.violations" in ctx.metrics
        assert "verify.invariants_checked" in ctx.metrics
        assert ctx.metrics.snapshot()["verify.violations"] == 0
        assert any(s.name == "verify.plan" for s in ctx.tracer.spans())

    def test_config_verify_false_skips(self, tiny_bert):
        _, ctx = plan_with_ctx(tiny_bert, paper_cluster(), 64, verify=False)
        event = ctx.events.find("verify")
        assert event.status == "skipped"
        assert "config.verify" in event.detail["reason"]
        assert not ctx.has(VERIFIED)


class TestCacheLoadVerification:
    def test_cache_hit_skips_duplicate_verification(
        self, tiny_bert, cache_dir
    ):
        cluster = paper_cluster()
        plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        warm, ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        load = ctx.events.find("cache_load")
        assert load.detail["hit"] is True
        assert load.detail["verified"] is True
        # the load already verified the restored plan; VerifyPass sees
        # the artifact and does not re-check
        assert ctx.events.find("verify").status == "skipped"
        assert warm.diagnostics.cache_hit

    def test_half_written_entry_is_miss_then_repaired(
        self, tiny_bert, cache_dir
    ):
        cluster = paper_cluster()
        _, ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        path = cache_path(ctx)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # simulate a crash mid-write

        warm, warm_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        load = warm_ctx.events.find("cache_load")
        assert load.detail["hit"] is False
        assert not warm.diagnostics.cache_hit
        # the store pass replaced the truncated entry with a valid one
        assert warm_ctx.events.find("cache_store").detail["stored"] is True
        repaired = json.loads(path.read_text())
        assert repaired["version"] == 1

        third, third_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        assert third_ctx.events.find("cache_load").detail["hit"] is True
        assert third.diagnostics.cache_hit

    def test_invariant_violating_entry_is_miss(self, tiny_bert, cache_dir):
        """A cached deployment that drops a stage fails verification on
        load and is replanned, not deployed."""
        cluster = paper_cluster()
        _, ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        path = cache_path(ctx)
        doc = json.loads(path.read_text())
        doc["stages"][0]["tasks"] = doc["stages"][0]["tasks"][:-2]
        path.write_text(json.dumps(doc))

        warm, warm_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        load = warm_ctx.events.find("cache_load")
        assert load.detail["hit"] is False
        assert "violation" in load.detail["reason"]
        assert not warm.diagnostics.cache_hit
        assert warm_ctx.events.find("stage_search").status == "ok"

    def test_verify_false_restores_legacy_load(self, tiny_bert, cache_dir):
        """With verification off, a structurally valid but tampered
        entry loads (the pre-verifier behaviour callers opt back into)."""
        cluster = paper_cluster()
        _, ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir,
                               verify=False)
        path = cache_path(ctx)
        doc = json.loads(path.read_text())
        doc["stages"][0]["tasks"] = doc["stages"][0]["tasks"][:-2]
        path.write_text(json.dumps(doc))
        warm, warm_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir,
                                       verify=False)
        assert warm_ctx.events.find("cache_load").detail["hit"] is True
        assert warm.diagnostics.cache_hit

    def test_store_leaves_no_temp_files(self, tiny_bert, cache_dir):
        _, ctx = plan_with_ctx(tiny_bert, paper_cluster(), 64, cache_dir)
        assert ctx.events.find("cache_store").detail["stored"] is True
        leftovers = [p for p in cache_dir.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []
        assert cache_path(ctx).exists()
