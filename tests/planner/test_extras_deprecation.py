"""``PartitionPlan.extras`` is deprecated in favor of ``diagnostics``."""

import warnings

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition


@pytest.fixture(scope="module")
def plan():
    graph = build_bert(
        BertConfig(hidden_size=256, num_layers=4, num_heads=8)
    )
    return auto_partition(graph, paper_cluster(1), 64)


def test_extras_warns(plan):
    with pytest.warns(DeprecationWarning, match="plan.diagnostics"):
        plan.extras


def test_extras_still_returns_the_flat_view(plan):
    with pytest.warns(DeprecationWarning):
        flat = plan.extras
    assert flat == plan.diagnostics.as_dict()


def test_diagnostics_access_does_not_warn(plan):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        plan.diagnostics.as_dict()
        plan.diagnostics.pipeline_time
