"""Tests for the pass manager: artifact invariants, event log, skip
logic, error reporting, and the default ``auto_partition`` pipeline."""

import pytest

from repro.hardware import paper_cluster
from repro.partitioner import PartitioningError, auto_partition
from repro.planner import (
    AllocatePass,
    AtomicPartitionPass,
    CoarsenPass,
    PassError,
    PassManager,
    PlannerConfig,
    PlannerPass,
    PlanningContext,
    ProfileTensorsPass,
    StageSearchPass,
    ValidatePass,
    default_passes,
    plan_graph,
)


def make_ctx(graph, cluster, **config_kwargs):
    config_kwargs.setdefault("batch_size", 64)
    return PlanningContext(graph, cluster, PlannerConfig(**config_kwargs))


class TestPassManager:
    def test_duplicate_pass_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PassManager([ValidatePass(), ValidatePass()])

    def test_missing_requirement_names_pass_and_artifact(self, tiny_bert):
        ctx = make_ctx(tiny_bert, paper_cluster())
        manager = PassManager([ValidatePass(), CoarsenPass()])
        with pytest.raises(PassError, match="'coarsen'.*'components'"):
            manager.run(ctx)

    def test_undelivered_artifact_reported(self, tiny_bert):
        class LazyPass(PlannerPass):
            name = "lazy"
            produces = ("never_made",)

            def run(self, ctx):
                return {}

        ctx = make_ctx(tiny_bert, paper_cluster())
        with pytest.raises(PassError, match="'lazy'.*'never_made'"):
            PassManager([LazyPass()]).run(ctx)

    def test_crashing_pass_wrapped_with_name(self, tiny_bert):
        class BoomPass(PlannerPass):
            name = "boom"

            def run(self, ctx):
                raise RuntimeError("kaput")

        ctx = make_ctx(tiny_bert, paper_cluster())
        with pytest.raises(PassError, match="'boom'.*kaput"):
            PassManager([BoomPass()]).run(ctx)
        event = ctx.events.find("boom")
        assert event.status == "failed"
        assert "kaput" in event.detail["error"]

    def test_domain_errors_keep_their_type(self, tiny_bert):
        ctx = make_ctx(tiny_bert, paper_cluster(), batch_size=0)
        with pytest.raises(ValueError, match="batch size"):
            PassManager([ValidatePass()]).run(ctx)
        assert ctx.events.find("validate").status == "failed"

    def test_event_per_pass_with_timings(self, tiny_bert):
        ctx = make_ctx(tiny_bert, paper_cluster())
        plan_graph(tiny_bert, paper_cluster(), ctx.config, context=ctx)
        names = [e.name for e in ctx.events]
        assert names == [
            "validate", "cache_load", "atomic_partition", "coarsen",
            "profile_tensors", "stage_search", "allocate", "evaluate",
            "verify", "cache_store",
        ]
        ran = {e.name for e in ctx.events if e.status == "ok"}
        # no cache dir: both cache passes self-skip, the rest run
        assert ran == {
            "validate", "atomic_partition", "coarsen", "profile_tensors",
            "stage_search", "allocate", "evaluate", "verify",
        }
        search = ctx.events.find("stage_search")
        assert search.wall_time > 0
        assert search.detail["dp_calls"] > 0


class TestDefaultPipeline:
    def test_default_passes_cover_all_phases(self):
        names = [p.name for p in default_passes()]
        assert names == [
            "validate", "cache_load", "atomic_partition", "coarsen",
            "profile_tensors", "stage_search", "allocate", "evaluate",
            "verify", "cache_store",
        ]

    def test_plan_has_pass_timings(self, tiny_bert, cluster):
        plan = auto_partition(tiny_bert, cluster, 64)
        timings = plan.diagnostics.pass_timings
        assert "stage_search" in timings and timings["stage_search"] > 0
        assert "coarsen" in timings
        # skipped passes (cache without a directory) record no timing
        assert "cache_load" not in timings
        flat = plan.diagnostics.as_dict()
        assert flat["pass_time.stage_search"] == pytest.approx(
            timings["stage_search"]
        )

    def test_plan_records_memo_hit_rate(self, tiny_bert, cluster):
        plan = auto_partition(tiny_bert, cluster, 64)
        assert 0.0 < plan.diagnostics.profiler_memo_hit_rate < 1.0

    def test_infeasible_raises_partitioning_error(self):
        from repro.hardware import tiny_cluster
        from repro.models import build_mlp

        starved = tiny_cluster(num_nodes=1, devices_per_node=2,
                               memory_bytes=1024**2)
        g = build_mlp((256, 1024, 1024, 256))
        ctx = make_ctx(g, starved, batch_size=8)
        with pytest.raises(PartitioningError, match="no feasible"):
            plan_graph(g, starved, ctx.config, context=ctx)
        assert ctx.events.find("stage_search").status == "failed"

    def test_custom_pipeline_without_evaluate(self, tiny_bert, cluster):
        """Baselines-style assembly: the same building blocks compose
        into a shorter pipeline that stops at allocation."""
        config = PlannerConfig(batch_size=64)
        ctx = PlanningContext(tiny_bert, cluster, config)
        plan = plan_graph(
            tiny_bert,
            cluster,
            config,
            passes=[
                ValidatePass(),
                AtomicPartitionPass(),
                CoarsenPass(),
                ProfileTensorsPass(),
                StageSearchPass(),
                AllocatePass(),
            ],
            context=ctx,
        )
        assert plan.num_stages >= 1
        assert plan.iteration_time == 0.0  # never evaluated
        full = auto_partition(tiny_bert, cluster, 64)
        assert [s.block_range for s in plan.stages] == [
            s.block_range for s in full.stages
        ]

    def test_evaluate_pass_matches_legacy_evaluate(self, tiny_bert, cluster):
        config = PlannerConfig(batch_size=64)
        plan = plan_graph(tiny_bert, cluster, config)
        assert plan.throughput > 0
        assert plan.diagnostics.pipeline_time > 0
        assert plan.diagnostics.as_dict()["pipeline_time"] == pytest.approx(
            plan.diagnostics.pipeline_time
        )


class TestBaselinePipelines:
    def test_baselines_share_planner_context(self, tiny_bert, cluster):
        from repro.baselines import DataParallelPass
        from repro.planner import FRAMEWORK_RESULT, run_framework_pipeline

        ctx = make_ctx(tiny_bert, cluster, validate=False)
        result = run_framework_pipeline(
            tiny_bert, cluster, ctx.config, [DataParallelPass()], context=ctx
        )
        assert result.framework == "data_parallel"
        assert ctx.artifacts[FRAMEWORK_RESULT] is result
        event = ctx.events.find("data_parallel_search")
        assert event.status == "ok"
        assert event.detail["feasible"] == result.feasible
