"""End-to-end tracing through the planning pipeline: pass spans, DP
spans/counters, cross-thread parenting under ``parallel_search``, and
the evaluate pass's pipeline gauges."""

from repro.hardware import paper_cluster
from repro.planner import PlannerConfig, PlanningContext, plan_graph
from repro.planner.events import PASS_CATEGORY


def run_plan(graph, **config_kwargs):
    config_kwargs.setdefault("batch_size", 64)
    ctx = PlanningContext(
        graph, paper_cluster(), PlannerConfig(**config_kwargs)
    )
    plan = plan_graph(graph, ctx.cluster, ctx.config, context=ctx)
    return ctx, plan


class TestPassSpans:
    def test_pass_spans_mirror_event_log(self, tiny_bert):
        ctx, _ = run_plan(tiny_bert)
        pass_spans = ctx.tracer.spans(PASS_CATEGORY)
        assert [s.name for s in pass_spans] == [e.name for e in ctx.events]
        by_name = {s.name: s for s in pass_spans}
        assert by_name["stage_search"].attrs["status"] == "ok"
        assert by_name["stage_search"].duration > 0

    def test_trace_off_records_no_fine_grained_spans(self, tiny_bert):
        ctx, _ = run_plan(tiny_bert, trace=False)
        assert ctx.tracer.spans("partitioner.dp") == []
        assert ctx.tracer.spans("partitioner.search") == []
        # coarse pass spans and DP counters stay on regardless
        assert len(ctx.tracer.spans(PASS_CATEGORY)) > 0
        assert ctx.metrics.counter("dp.calls").value > 0


class TestDPInstrumentation:
    def test_candidate_spans_match_dp_calls(self, tiny_bert):
        ctx, _ = run_plan(tiny_bert, trace=True)
        dp_spans = ctx.tracer.spans("partitioner.dp")
        assert len(dp_spans) == ctx.metrics.counter("dp.calls").value
        assert len(dp_spans) == ctx.events.find("stage_search").detail[
            "dp_calls"
        ]
        for span in dp_spans:
            assert {"S", "MB"} <= set(span.attrs)
            assert "feasible" in span.attrs

    def test_per_point_state_counters(self, tiny_bert):
        ctx, _ = run_plan(tiny_bert)
        snap = ctx.metrics.snapshot()
        points = {
            k: v for k, v in snap.items()
            if k.startswith("dp.states_evaluated[")
        }
        assert points, f"no per-(S,MB) counters in {sorted(snap)}"
        assert sum(points.values()) == snap["dp.states_evaluated"]
        assert snap["dp.states_per_call"]["count"] == snap["dp.calls"]

    def test_profiler_gauges_exported(self, tiny_bert):
        ctx, _ = run_plan(tiny_bert)
        snap = ctx.metrics.snapshot()
        assert snap["profiler.memo_hits"] == (
            snap["profiler.cache_hits"] + snap["profiler.table_hits"]
        )
        assert snap["profiler.tensor_builds"] >= 1


class TestParallelSearchTracing:
    def test_cross_thread_parenting(self, tiny_bert):
        ctx, _ = run_plan(
            tiny_bert, trace=True, parallel_search=True, search_workers=4
        )
        level_spans = ctx.tracer.spans("partitioner.search")
        dp_spans = ctx.tracer.spans("partitioner.dp")
        assert level_spans and dp_spans
        level_ids = {s.span_id for s in level_spans}
        # every DP candidate span hangs off a search-level span, even
        # when it ran on a pool thread
        for span in dp_spans:
            assert span.parent_id in level_ids
        # the sweep actually fanned out
        assert len({s.thread_id for s in dp_spans}) >= 1

    def test_parallel_counters_match_serial(self, tiny_bert):
        serial, plan_s = run_plan(tiny_bert, parallel_search=False)
        par, plan_p = run_plan(
            tiny_bert, parallel_search=True, search_workers=4
        )
        keys = ("dp.calls", "dp.states_evaluated", "dp.infeasible")
        for key in keys:
            assert (
                serial.metrics.counter(key).value
                == par.metrics.counter(key).value
            )
        assert plan_s.num_stages == plan_p.num_stages


class TestEvaluateGauges:
    def test_bubble_and_utilization_gauges(self, tiny_bert):
        ctx, plan = run_plan(tiny_bert)
        snap = ctx.metrics.snapshot()
        bubble = snap["stage.bubble_frac"]
        assert 0.0 <= bubble < 1.0
        for s in range(plan.num_stages):
            util = snap[f"stage.{s}.utilization"]
            assert 0.0 < util <= 1.0
        assert ctx.events.find("evaluate").detail["bubble_frac"] == bubble
