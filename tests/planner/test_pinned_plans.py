"""Bit-identity guard for the communication-model refactor.

``tests/data/pinned_plans.json`` is a snapshot of ``auto_partition``
output taken on pre-``repro.comm`` main for the paper's three reference
models across the v100x8/16/32 presets.  Under the default
``comm_model="flat"`` the delegation through :mod:`repro.comm` must
reproduce every plan *exactly* -- same boundaries, same device counts,
and floating-point-equal iteration times -- because the flat model is
the legacy arithmetic, expression for expression.
"""

import json
from pathlib import Path

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, ResNetConfig, build_bert, build_resnet
from repro.partitioner import auto_partition
from repro.partitioner.stage_dp import DP_ENGINES

FIXTURE = Path(__file__).resolve().parents[1] / "data" / "pinned_plans.json"

# builder + batch size per pinned model, matching the snapshot script
MODELS = {
    "bert-base": (
        lambda: build_bert(
            BertConfig(hidden_size=768, num_layers=12, num_heads=12)
        ),
        256,
    ),
    "bert-large": (lambda: build_bert(BertConfig()), 256),
    "resnet50x8": (
        lambda: build_resnet(ResNetConfig(depth=50, width_factor=8)),
        512,
    ),
}
CLUSTERS = {"v100x8": 1, "v100x16": 2, "v100x32": 4}


def _pinned():
    with FIXTURE.open() as fh:
        return json.load(fh)


PINNED = _pinned()


@pytest.mark.parametrize("key", sorted(PINNED), ids=sorted(PINNED))
def test_flat_model_matches_pinned_plan(key):
    expected = PINNED[key]
    model_name, cluster_name = key.split("/")
    build, batch_size = MODELS[model_name]
    cluster = paper_cluster(CLUSTERS[cluster_name])
    assert cluster.comm_model == "flat"  # the default must stay flat

    plan = auto_partition(build(), cluster, batch_size)

    assert expected["feasible"]
    assert [list(s.block_range) for s in plan.stages] == expected["boundaries"]
    assert [s.devices_per_pipeline for s in plan.stages] == expected["devices"]
    assert [s.microbatch_size for s in plan.stages] == (
        expected["microbatch_sizes"]
    )
    assert plan.num_microbatches == expected["num_microbatches"]
    assert plan.replica_factor == expected["replica_factor"]
    # bit-identical, not approximately equal: the flat path is the
    # pre-refactor arithmetic verbatim
    assert plan.iteration_time == expected["iteration_time"]
    assert plan.diagnostics.pipeline_time == expected["pipeline_time"]
    assert plan.diagnostics.allreduce_time == expected["allreduce_time"]
    assert [s.profile.time_fwd for s in plan.stages] == (
        expected["stage_time_fwd"]
    )
    assert [s.profile.time_bwd for s in plan.stages] == (
        expected["stage_time_bwd"]
    )


def test_fixture_covers_full_matrix():
    assert set(PINNED) == {
        f"{m}/{c}" for m in MODELS for c in CLUSTERS
    }


# every non-default DP engine must reproduce the same pinned plans the
# default ("numpy") engine is held to above -- the engines are different
# evaluation strategies over one DP, not different algorithms.  "numba"
# degrades to the banded NumPy engine when numba is absent, so this test
# is meaningful (and identical) with or without the JIT installed.
ENGINES = [e for e in DP_ENGINES if e != "numpy"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("key", sorted(PINNED), ids=sorted(PINNED))
def test_every_engine_matches_pinned_plan(key, engine):
    expected = PINNED[key]
    model_name, cluster_name = key.split("/")
    build, batch_size = MODELS[model_name]
    cluster = paper_cluster(CLUSTERS[cluster_name])

    plan = auto_partition(build(), cluster, batch_size, dp_engine=engine)

    assert [list(s.block_range) for s in plan.stages] == expected["boundaries"]
    assert [s.devices_per_pipeline for s in plan.stages] == expected["devices"]
    assert plan.num_microbatches == expected["num_microbatches"]
    assert plan.replica_factor == expected["replica_factor"]
    assert plan.iteration_time == expected["iteration_time"]
