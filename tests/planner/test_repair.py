"""Replan-on-event repair (:mod:`repro.planner.repair`).

Three layers of guarantees:

* the in-place path keeps the stage boundaries, migrates only the
  (replica, stage) pairs whose parameters died with the event, and the
  repaired plan re-verifies with zero violations;
* a repair that needs zero migrations is replica-aligned and lands on
  the same plan a full :func:`replan` would choose -- the in-place
  microbatch re-optimization closes the only gap;
* a seeded randomized harness drives every event kind over homogeneous
  and heterogeneous presets and holds every outcome to the same
  verification bar.
"""

import random

import pytest

from repro.hardware import tiny_cluster, tiny_mixed_cluster
from repro.models import build_mlp
from repro.partitioner import PartitioningError
from repro.planner import (
    NodeLoss,
    PlannerConfig,
    PlanningContext,
    Preemption,
    ScaleUp,
    plan_graph,
    repair,
    replan,
    survivor_map,
)
from repro.verify import check_plan

#: deep/wide enough that S=3 R=2 on 4x2 devices -- losing a node drops
#: one replica of stages 1 and 2, forcing real parameter migrations
WIDE_MLP = (1024,) + (8192,) * 10 + (10,)


def plan_wide():
    graph = build_mlp(WIDE_MLP)
    cluster = tiny_cluster(
        num_nodes=4, devices_per_node=2, memory_bytes=4 * 2**30
    )
    config = PlannerConfig(batch_size=32, num_blocks=12)
    ctx = PlanningContext(graph, cluster, config)
    plan = plan_graph(graph, cluster, config, context=ctx)
    return graph, ctx, plan


def plan_small():
    """S=1 pure data parallelism: every rank holds the whole model, so
    any event repairs with zero migrations."""
    graph = build_mlp((64, 128, 64, 10))
    cluster = tiny_cluster(num_nodes=2, devices_per_node=4)
    config = PlannerConfig(batch_size=32, num_blocks=4)
    ctx = PlanningContext(graph, cluster, config)
    plan = plan_graph(graph, cluster, config, context=ctx)
    return graph, ctx, plan


class TestSurvivorMap:
    def test_node_loss_shifts_later_ranks(self):
        old = tiny_cluster(num_nodes=4, devices_per_node=2)
        event = NodeLoss(1)
        new = event.apply(old)
        smap = survivor_map(old, new, event)
        assert smap == {0: 0, 1: 1, 4: 2, 5: 3, 6: 4, 7: 5}

    def test_homogeneous_scale_up_is_identity(self):
        old = tiny_cluster(num_nodes=2, devices_per_node=4)
        event = ScaleUp(1)
        new = event.apply(old)
        assert survivor_map(old, new, event) == {r: r for r in range(8)}

    def test_hetero_scale_up_shifts_later_classes(self):
        old = tiny_mixed_cluster()  # small node (ranks 0-3), big (4-7)
        event = ScaleUp(1, class_name="small")
        new = event.apply(old)
        smap = survivor_map(old, new, event)
        # the grown class keeps its ranks; the class declared after it
        # is renumbered past the new node
        assert smap == {0: 0, 1: 1, 2: 2, 3: 3, 4: 8, 5: 9, 6: 10, 7: 11}


class TestRepairRequiresPlan:
    def test_empty_context_raises(self):
        graph = build_mlp((8, 8))
        cluster = tiny_cluster()
        ctx = PlanningContext(graph, cluster, PlannerConfig(batch_size=8))
        with pytest.raises(ValueError, match="finished planning run"):
            repair(ctx, NodeLoss(0))


class TestInPlaceRepair:
    def test_node_loss_migrates_and_verifies(self):
        graph, ctx, plan = plan_wide()
        assert plan.num_stages == 3 and plan.replica_factor == 2

        result = repair(ctx, NodeLoss(1))

        assert not result.used_full_replan
        assert result.fallback_reason == ""
        assert result.cluster.num_nodes == 3
        # node 1 held one replica's copy of two stages -> both must
        # refetch parameters from the surviving replica
        assert result.migrated_pairs == 2
        assert result.migration_bytes > 0
        assert result.migration_time > 0
        assert result.repair_latency > 0
        # boundaries survive; only the replica factor shrinks
        assert [s.block_range for s in result.plan.stages] == (
            [s.block_range for s in plan.stages]
        )
        assert result.plan.replica_factor == 1
        report = check_plan(result.plan, graph)
        assert report.ok and not report.violations

    def test_transfers_are_priced_not_free(self):
        _, ctx, _ = plan_wide()
        result = repair(ctx, NodeLoss(1))
        assert result.transfers
        total = sum(t.nbytes for t in result.transfers)
        assert total == pytest.approx(result.migration_bytes)

    def test_repairs_chain_through_result_context(self):
        graph, ctx, _ = plan_wide()
        first = repair(ctx, NodeLoss(1))
        second = repair(first.context, NodeLoss(0))
        assert second.cluster.num_nodes == 2
        report = check_plan(second.plan, graph)
        assert report.ok and not report.violations


class TestZeroMigrationEqualsReplan:
    def test_zero_migration_plan_equals_full_replan(self):
        # losing a whole node of a pure-DP plan removes whole replicas:
        # nothing migrates, the in-place plan is adopted, and it must
        # coincide with what a full replan on the survivors would pick
        graph, ctx, _ = plan_small()
        event = NodeLoss(0)
        result = repair(ctx, event)

        assert not result.used_full_replan
        assert result.fallback_reason == ""
        assert result.migrated_pairs == 0
        assert not result.transfers

        expected = replan(ctx, cluster=event.apply(ctx.cluster))
        assert [s.block_range for s in result.plan.stages] == (
            [s.block_range for s in expected.stages]
        )
        assert result.plan.replica_factor == expected.replica_factor
        assert [s.devices_per_pipeline for s in result.plan.stages] == (
            [s.devices_per_pipeline for s in expected.stages]
        )
        assert result.plan.num_microbatches == expected.num_microbatches
        assert result.plan.iteration_time == expected.iteration_time

    def test_scale_up_seeds_new_replicas_in_place(self):
        # scale-up is NOT a zero-migration event: the new ranks hold no
        # parameters yet, so the in-place path keeps the boundaries and
        # prices the copies that seed the extra replicas
        graph, ctx, plan = plan_small()
        event = ScaleUp(2)
        result = repair(ctx, event)

        assert not result.used_full_replan
        assert result.cluster.num_nodes == 4
        assert result.migrated_pairs > 0
        assert result.plan.replica_factor > plan.replica_factor
        assert [s.block_range for s in result.plan.stages] == (
            [s.block_range for s in plan.stages]
        )
        report = check_plan(result.plan, graph)
        assert report.ok and not report.violations


class TestHeteroFeasibilityAcceptance:
    """A mixed-memory cluster admits a verified plan the homogeneous
    small-memory cluster cannot produce at all."""

    MODEL = (256,) + (8192,) * 12 + (10,)

    def test_mixed_cluster_unlocks_infeasible_model(self):
        graph = build_mlp(self.MODEL)
        config = PlannerConfig(batch_size=16, num_blocks=10)

        homogeneous = tiny_cluster(
            num_nodes=2, devices_per_node=4, memory_bytes=2 * 2**30
        )
        with pytest.raises(PartitioningError):
            plan_graph(graph, homogeneous, config)

        mixed = tiny_mixed_cluster()  # same shape, one big-memory node
        ctx = PlanningContext(graph, mixed, config)
        plan = plan_graph(graph, mixed, config, context=ctx)
        report = check_plan(plan, graph)
        assert report.ok and not report.violations
        assert plan.num_stages > 1


def _random_event(rng, cluster):
    kind = rng.choice(("node_loss", "preemption", "scale_up"))
    if kind == "scale_up":
        if cluster.is_heterogeneous:
            name = rng.choice([c.name for c in cluster.device_classes])
            return ScaleUp(rng.randint(1, 2), class_name=name)
        return ScaleUp(rng.randint(1, 2))
    node = rng.randrange(cluster.num_nodes)
    return NodeLoss(node) if kind == "node_loss" else Preemption(node)


SCENARIOS = {
    "wide-mlp": plan_wide,
    "small-mlp": plan_small,
}


class TestRandomizedRepairHarness:
    """Seeded event deltas x presets: every repaired plan verifies with
    zero violations, and whenever zero stages need migration the
    repaired plan equals the full replan's plan."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_repaired_plans_verify(self, scenario, seed):
        graph, ctx, _ = SCENARIOS[scenario]()
        rng = random.Random(seed)
        event = _random_event(rng, ctx.cluster)
        try:
            result = repair(ctx, event)
        except PartitioningError:
            # the survivors genuinely cannot host the model; the error
            # must propagate rather than yield an unverified plan
            return
        report = check_plan(result.plan, graph)
        assert report.ok and not report.violations
        assert result.cluster.total_devices >= (
            result.plan.replica_factor
            * sum(s.devices_per_pipeline for s in result.plan.stages)
        )
        if result.migrated_pairs == 0 and not result.used_full_replan:
            try:
                expected = replan(ctx, cluster=event.apply(ctx.cluster))
            except PartitioningError:
                # the from-scratch search needs pipeline node counts to
                # tile the cluster; the in-place repair may keep a plan
                # alive where no cold plan exists -- nothing to compare
                return
            assert [s.block_range for s in result.plan.stages] == (
                [s.block_range for s in expected.stages]
            )
            assert result.plan.replica_factor == expected.replica_factor
            assert (
                result.plan.num_microbatches == expected.num_microbatches
            )
            assert result.plan.iteration_time == expected.iteration_time
        assert result.repair_latency > 0

    def test_mixed_cluster_events(self):
        graph = build_mlp((256,) + (4096,) * 6 + (10,))
        cluster = tiny_mixed_cluster()
        config = PlannerConfig(batch_size=16, num_blocks=8)
        ctx = PlanningContext(graph, cluster, config)
        plan_graph(graph, cluster, config, context=ctx)
        for seed in range(3):
            rng = random.Random(seed)
            event = _random_event(rng, cluster)
            try:
                result = repair(ctx, event)
            except PartitioningError:
                continue
            report = check_plan(result.plan, graph)
            assert report.ok and not report.violations
