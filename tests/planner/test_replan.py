"""Delta-replan equality: warm replans must be bit-identical to cold runs.

Every pass is deterministic, so reusing stored artifacts must never
change the plan -- only how much of the pipeline reruns.  These tests
drive :func:`repro.planner.replan` over the PR-5 pinned-plan fixture
(the paper's three reference models across the v100x8/16/32 presets) and
hold every delta-produced plan to the pinned snapshot, field for field
and float for float, while asserting *what* was reused via the event log
and the ``planner.reuse.*`` gauges.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, ResNetConfig, build_bert, build_resnet
from repro.partitioner import auto_partition
from repro.partitioner.deployment import plan_to_json
from repro.planner import (
    ArtifactStore,
    PlannerConfig,
    PlanningContext,
    ensure_store,
    plan_graph,
    replan,
)

FIXTURE = Path(__file__).resolve().parents[1] / "data" / "pinned_plans.json"

MODELS = {
    "bert-base": (
        lambda: build_bert(
            BertConfig(hidden_size=768, num_layers=12, num_heads=12)
        ),
        256,
    ),
    "bert-large": (lambda: build_bert(BertConfig()), 256),
    "resnet50x8": (
        lambda: build_resnet(ResNetConfig(depth=50, width_factor=8)),
        512,
    ),
}
CLUSTERS = {"v100x8": 1, "v100x16": 2, "v100x32": 4}
CLUSTER_ORDER = list(CLUSTERS)

with FIXTURE.open() as fh:
    PINNED = json.load(fh)

#: passes whose artifacts survive a cluster-size or budget change
PROFILE_PASSES = ("atomic_partition", "coarsen", "profile_tensors")


def _assert_matches_pinned(plan, expected):
    assert expected["feasible"]
    assert [list(s.block_range) for s in plan.stages] == (
        expected["boundaries"]
    )
    assert [s.devices_per_pipeline for s in plan.stages] == (
        expected["devices"]
    )
    assert [s.microbatch_size for s in plan.stages] == (
        expected["microbatch_sizes"]
    )
    assert plan.num_microbatches == expected["num_microbatches"]
    assert plan.replica_factor == expected["replica_factor"]
    # bit-identical, not approximately equal: artifact reuse must not
    # perturb a single float
    assert plan.iteration_time == expected["iteration_time"]
    assert plan.diagnostics.pipeline_time == expected["pipeline_time"]
    assert plan.diagnostics.allreduce_time == expected["allreduce_time"]
    assert [s.profile.time_fwd for s in plan.stages] == (
        expected["stage_time_fwd"]
    )
    assert [s.profile.time_bwd for s in plan.stages] == (
        expected["stage_time_bwd"]
    )


def _reused(ctx):
    return [e.name for e in ctx.events if e.detail.get("reuse")]


@pytest.mark.parametrize("key", sorted(PINNED), ids=sorted(PINNED))
def test_cluster_change_delta_matches_pinned(key):
    """Plan on a *different* cluster, delta-replan to the target, and
    demand the pinned (cold-run) plan bit for bit."""
    model_name, cluster_name = key.split("/")
    build, batch_size = MODELS[model_name]
    graph = build()
    prev_name = CLUSTER_ORDER[
        (CLUSTER_ORDER.index(cluster_name) + 1) % len(CLUSTER_ORDER)
    ]
    config = PlannerConfig(batch_size=batch_size)

    prev_ctx = PlanningContext(
        graph, paper_cluster(CLUSTERS[prev_name]), config
    )
    plan_graph(graph, prev_ctx.cluster, config, context=prev_ctx)

    target = paper_cluster(CLUSTERS[cluster_name])
    new_ctx = PlanningContext(graph, target, config)
    plan = replan(prev_ctx, cluster=target, context=new_ctx)

    _assert_matches_pinned(plan, PINNED[key])
    # a cluster-size change invalidates the stage search onward but
    # reuses the partitioning and the profile tensors
    assert _reused(new_ctx) == list(PROFILE_PASSES)
    for name in ("stage_search", "allocate", "evaluate", "verify"):
        assert new_ctx.events.find(name).status == "ok"
    snap = new_ctx.metrics.snapshot()
    assert snap["planner.reuse.passes_skipped"] == len(PROFILE_PASSES)
    assert snap["planner.reuse.artifacts_loaded"] == len(PROFILE_PASSES)
    spans = [
        s for s in new_ctx.tracer.spans() if s.category == "planner.reuse"
    ]
    assert {s.name for s in spans} == {
        f"planner.reuse.{p}" for p in PROFILE_PASSES
    }


@pytest.mark.parametrize("model_name", sorted(MODELS), ids=sorted(MODELS))
def test_perturb_then_restore_reuses_everything(model_name):
    """Changing the config and changing it back must reuse the whole
    cacheable pipeline and reproduce the original plan bit for bit."""
    build, batch_size = MODELS[model_name]
    graph = build()
    cluster = paper_cluster(2)
    config = PlannerConfig(batch_size=batch_size)

    prev_ctx = PlanningContext(graph, cluster, config)
    original = plan_graph(graph, cluster, config, context=prev_ctx)

    # perturb: cap the memory budget, which invalidates the search
    budget = cluster.device.usable_memory * 0.75
    perturbed_ctx = PlanningContext(
        graph,
        cluster,
        dataclasses.replace(config, memory_budget=budget),
    )
    replan(prev_ctx, memory_budget=budget, context=perturbed_ctx)
    assert _reused(perturbed_ctx) == list(PROFILE_PASSES)

    # restore: every cacheable pass's inputs are unchanged again
    restored_ctx = PlanningContext(graph, cluster, config)
    restored = replan(perturbed_ctx, config=config, context=restored_ctx)
    assert _reused(restored_ctx) == [
        "atomic_partition",
        "coarsen",
        "profile_tensors",
        "stage_search",
        "allocate",
        "evaluate",
    ]
    # verify still re-checks the reused plan
    assert restored_ctx.events.find("verify").status == "ok"
    assert plan_to_json(restored, graph) == plan_to_json(original, graph)


def test_memory_budget_change_matches_cold_run():
    build, batch_size = MODELS["bert-base"]
    graph = build()
    cluster = paper_cluster(2)
    config = PlannerConfig(batch_size=batch_size)
    budget = cluster.device.usable_memory * 0.6

    prev_ctx = PlanningContext(graph, cluster, config)
    plan_graph(graph, cluster, config, context=prev_ctx)

    new_ctx = PlanningContext(
        graph, cluster, dataclasses.replace(config, memory_budget=budget)
    )
    delta = replan(prev_ctx, memory_budget=budget, context=new_ctx)
    assert _reused(new_ctx) == list(PROFILE_PASSES)
    assert new_ctx.events.find("stage_search").status == "ok"

    cold = plan_graph(
        graph, cluster, dataclasses.replace(config, memory_budget=budget)
    )
    assert plan_to_json(delta, graph) == plan_to_json(cold, graph)


def test_auto_partition_reuse_from():
    """The one-call API: ``reuse_from=`` turns the second call into a
    delta replan."""
    build, batch_size = MODELS["bert-base"]
    graph = build()
    prev_ctx = PlanningContext(
        graph, paper_cluster(1), PlannerConfig(batch_size=batch_size)
    )
    auto_partition(graph, prev_ctx.cluster, batch_size, context=prev_ctx)

    bigger = paper_cluster(4)
    new_ctx = PlanningContext(
        graph, bigger, PlannerConfig(batch_size=batch_size)
    )
    plan = auto_partition(
        graph, bigger, batch_size, context=new_ctx, reuse_from=prev_ctx
    )
    assert _reused(new_ctx) == list(PROFILE_PASSES)
    _assert_matches_pinned(plan, PINNED["bert-base/v100x32"])


def test_disk_artifacts_survive_process_boundary(tmp_path):
    """A fresh store over the same cache dir (a new process, in effect)
    reloads the serialized artifacts from disk."""
    build, batch_size = MODELS["bert-base"]
    graph = build()
    cluster = paper_cluster(1)
    config = PlannerConfig(batch_size=batch_size, cache_dir=tmp_path)

    ctx1 = PlanningContext(graph, cluster, config)
    ctx1.attach_store(ArtifactStore())
    plan_graph(graph, cluster, config, context=ctx1)
    assert sorted(p.name.split("-")[0] for p in
                  (tmp_path / "artifacts").iterdir()) == [
        "blocks", "components", "dp_context", "search_result",
    ]

    # different budget: the legacy whole-plan cache misses, the
    # artifact store hits from disk for the profile passes
    budget = cluster.device.usable_memory * 0.7
    ctx2 = PlanningContext(
        graph, cluster, dataclasses.replace(config, memory_budget=budget)
    )
    ctx2.attach_store(ArtifactStore())
    plan_graph(graph, cluster, ctx2.config, context=ctx2)
    assert _reused(ctx2) == list(PROFILE_PASSES)
    assert ctx2.metrics.snapshot()["planner.store.disk_hits"] == len(
        PROFILE_PASSES
    )


def test_ensure_store_is_idempotent():
    build, batch_size = MODELS["bert-base"]
    graph = build()
    ctx = PlanningContext(
        graph, paper_cluster(1), PlannerConfig(batch_size=batch_size)
    )
    plan_graph(graph, ctx.cluster, ctx.config, context=ctx)
    store = ensure_store(ctx)
    assert ensure_store(ctx) is store
    # seeded under the exact fingerprints a store-backed run computes
    assert set(ctx.artifact_fps) >= {
        "components", "blocks", "dp_context", "search_result",
    }
    for name, fp in ctx.artifact_fps.items():
        assert store.get(name, fp) is not None
