"""Thread-pool hammer tests for the shared artifact store.

The plan service points many worker threads at one
:class:`ArtifactStore` and one byte-budgeted :class:`DiskBackend`
(docs/SERVICE.md, "Concurrency"), so these tests drive both with real
thread pools and check the documented contract: linearizable
``get``/``put``/``refresh``/``stats``, LRU accounting that never goes
negative or over budget, and disk reads that see whole entries even
while writers and the budget enforcer are running.
"""

import concurrent.futures
import json
import threading

from repro.planner import ArtifactStore, DiskBackend

THREADS = 8
OPS_PER_THREAD = 120


class TestArtifactStoreHammer:
    def test_put_get_refresh_under_contention(self):
        store = ArtifactStore(memory_budget_bytes=16 * 1024)
        keys = [f"fp{i}" for i in range(12)]
        errors = []

        def worker(worker_id):
            try:
                for op in range(OPS_PER_THREAD):
                    fp = keys[(worker_id + op) % len(keys)]
                    if op % 3 == 0:
                        payload = {"worker": worker_id, "op": op,
                                   "pad": "x" * 200}
                        store.put("hammer", fp, payload)
                    elif op % 3 == 1:
                        art = store.get("hammer", fp)
                        if art is not None:
                            # payloads are whole objects, never torn
                            assert set(art.payload) == {
                                "worker", "op", "pad"
                            }
                    else:
                        store.stats()
            except Exception as exc:  # noqa: BLE001 - report in main thread
                errors.append(exc)

        with concurrent.futures.ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        assert errors == []
        stats = store.stats()
        assert stats["hits"] + stats["misses"] == THREADS * OPS_PER_THREAD / 3
        # LRU accounting stayed consistent: the tracked byte total is
        # exactly the sum over live entries, and the budget held
        live_bytes = sum(a.nbytes for a in store._mem.values())
        assert store._mem_bytes == live_bytes
        assert store._mem_bytes <= 16 * 1024 or len(store) == 1

    def test_eviction_race_keeps_len_and_bytes_in_sync(self):
        # a budget small enough that almost every put evicts: the
        # pop/insert pair must stay atomic under contention
        store = ArtifactStore(memory_budget_bytes=600)

        def writer(worker_id):
            for op in range(OPS_PER_THREAD):
                store.put(
                    "evict", f"fp{worker_id}-{op}", {"pad": "y" * 100}
                )

        with concurrent.futures.ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(writer, range(THREADS)))

        assert store._mem_bytes == sum(
            a.nbytes for a in store._mem.values()
        )
        assert store.memory_evictions > 0


class TestDiskBackendHammer:
    def test_readers_never_see_torn_writes(self, tmp_path):
        backend = DiskBackend(tmp_path, byte_budget=8 * 1024)
        paths = [f"entry{i}.json" for i in range(6)]
        stop = threading.Event()
        errors = []

        def writer(worker_id):
            version = 0
            while not stop.is_set():
                version += 1
                doc = {"writer": worker_id, "version": version,
                       "pad": "z" * 400}
                backend.write_text(paths[worker_id % len(paths)],
                                   json.dumps(doc))

        def reader():
            while not stop.is_set():
                for relpath in paths:
                    text = backend.read_text(relpath)
                    if text is None:
                        continue  # missing or evicted: a clean miss
                    try:
                        doc = json.loads(text)
                    except ValueError as exc:
                        errors.append(
                            AssertionError(f"torn read of {relpath}: {exc}")
                        )
                        stop.set()
                        return
                    assert set(doc) == {"writer", "version", "pad"}

        with concurrent.futures.ThreadPoolExecutor(THREADS) as pool:
            futures = [pool.submit(writer, i) for i in range(4)]
            futures += [pool.submit(reader) for _ in range(3)]
            # a 0.5 s soak is plenty: hundreds of write/evict/read
            # interleavings on a loaded machine
            stop.wait(0.5)
            stop.set()
            for future in futures:
                future.result(timeout=30)

        assert errors == []
        # the enforcer ran while readers were live and left only whole
        # files under budget, with no temp debris at final paths
        leftovers = [p.name for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []
        assert backend.bytes_used() <= 8 * 1024 + 1024

    def test_concurrent_budget_enforcement_is_single_writer(self, tmp_path):
        backend = DiskBackend(tmp_path, byte_budget=2 * 1024)

        def writer(worker_id):
            for op in range(40):
                backend.write_bytes(
                    f"w{worker_id}-{op}.bin", bytes(256)
                )

        with concurrent.futures.ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(writer, range(THREADS)))

        assert backend.evictions > 0
        # every surviving file is whole (write-then-rename), and the
        # budget held once the dust settled
        for path in tmp_path.rglob("*.bin"):
            assert path.stat().st_size == 256
        assert backend.bytes_used() <= 2 * 1024 + 256
