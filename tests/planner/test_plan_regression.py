"""Regression guard for the pass-based refactor: ``auto_partition`` must
produce exactly the plan the pre-refactor monolithic implementation
produced for the paper's reference workloads on ``paper_cluster()``.

The expected values are a snapshot of the seed implementation's output
(commit 6797369) for BERT-Base at batch 256 and ResNet-50x8 at batch
512; they are deterministic functions of the analytic cost model.
"""

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, ResNetConfig, build_bert, build_resnet
from repro.partitioner import auto_partition


@pytest.mark.parametrize(
    "name,build,batch_size,boundaries,devices,microbatches,replicas",
    [
        (
            "bert_base",
            lambda: build_bert(
                BertConfig(hidden_size=768, num_layers=12, num_heads=12)
            ),
            256,
            [(0, 32)],
            [8],
            1,
            4,
        ),
        (
            "resnet50x8",
            lambda: build_resnet(ResNetConfig(depth=50, width_factor=8)),
            512,
            [(0, 22), (22, 32)],
            [5, 3],
            16,
            4,
        ),
    ],
    ids=["bert_base", "resnet50x8"],
)
def test_plan_matches_pre_refactor_output(
    name, build, batch_size, boundaries, devices, microbatches, replicas
):
    plan = auto_partition(build(), paper_cluster(), batch_size)
    assert [s.block_range for s in plan.stages] == boundaries
    assert [s.devices_per_pipeline for s in plan.stages] == devices
    assert plan.num_microbatches == microbatches
    assert plan.replica_factor == replicas
    assert plan.throughput > 0


def test_bert_base_full_snapshot():
    """Finer-grained snapshot of the BERT-Base plan: microbatch sizes and
    the search statistics the old ``extras`` dict reported."""
    graph = build_bert(BertConfig(hidden_size=768, num_layers=12,
                                  num_heads=12))
    plan = auto_partition(graph, paper_cluster(), 256)
    assert [s.microbatch_size for s in plan.stages] == [8]
    assert plan.diagnostics.dp_calls == 56
    assert plan.diagnostics.num_blocks == 32
    assert plan.diagnostics.num_atomic_components == 343
    assert plan.iteration_time == pytest.approx(0.499316, rel=1e-3)
