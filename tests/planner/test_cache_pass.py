"""Deployment-cache round trip through the planner's ``CachePass``:
hits return an identical plan with zero DP work; any change to the
graph, the cluster, or the planner config invalidates the key."""

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.planner import PlannerConfig, PlanningContext, cache_path


def plan_with_ctx(graph, cluster, batch_size, cache_dir, **kwargs):
    ctx = PlanningContext(
        graph, cluster,
        PlannerConfig(batch_size=batch_size, cache_dir=cache_dir, **kwargs),
    )
    plan = auto_partition(
        graph, cluster, batch_size, cache_dir=cache_dir, context=ctx,
        **kwargs,
    )
    return plan, ctx


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "deployments"


class TestCacheHit:
    def test_second_call_loads_identical_plan(self, tiny_bert, cache_dir):
        cluster = paper_cluster()
        cold, cold_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        assert cold_ctx.events.find("cache_load").detail["hit"] is False
        assert cold_ctx.events.find("cache_store").detail["stored"] is True
        assert not cold.diagnostics.cache_hit

        warm, warm_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        assert warm_ctx.events.find("cache_load").detail["hit"] is True
        assert warm.diagnostics.cache_hit
        # plan identity: boundaries, devices, microbatches, replicas
        assert [s.block_range for s in warm.stages] == [
            s.block_range for s in cold.stages
        ]
        assert [s.devices_per_pipeline for s in warm.stages] == [
            s.devices_per_pipeline for s in cold.stages
        ]
        assert [s.tasks for s in warm.stages] == [s.tasks for s in cold.stages]
        assert warm.num_microbatches == cold.num_microbatches
        assert warm.replica_factor == cold.replica_factor
        assert warm.throughput == pytest.approx(cold.throughput)

    def test_cached_run_performs_zero_dp_calls(
        self, tiny_bert, cache_dir, monkeypatch
    ):
        cluster = paper_cluster()
        plan_with_ctx(tiny_bert, cluster, 64, cache_dir)

        def _forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("form_stage_dp called on a cache hit")

        import repro.partitioner.search as search_mod

        monkeypatch.setattr(search_mod, "form_stage_dp", _forbidden)
        warm, ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        assert warm.diagnostics.dp_calls == 0
        assert ctx.events.find("stage_search").status == "skipped"
        assert "pass_time.stage_search" not in warm.diagnostics.as_dict()

    def test_stale_entry_treated_as_miss(self, tiny_bert, cache_dir):
        cluster = paper_cluster()
        _, ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        path = cache_path(ctx)
        path.write_text(path.read_text().replace('"version": 1', '"version": 9'))
        warm, warm_ctx = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        load = warm_ctx.events.find("cache_load")
        assert load.detail["hit"] is False
        assert "version" in load.detail["reason"]
        assert not warm.diagnostics.cache_hit


class TestCacheInvalidation:
    def test_mutated_graph_replans(self, tiny_bert, cache_dir):
        cluster = paper_cluster()
        _, ctx1 = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        other = build_bert(
            BertConfig(hidden_size=32, num_layers=3, num_heads=4,
                       seq_len=16, vocab_size=101)
        )
        _, ctx2 = plan_with_ctx(other, cluster, 64, cache_dir)
        assert cache_path(ctx1) != cache_path(ctx2)
        assert ctx2.events.find("cache_load").detail["hit"] is False
        assert ctx2.events.find("stage_search").status == "ok"

    def test_changed_cluster_replans(self, tiny_bert, cache_dir):
        _, ctx1 = plan_with_ctx(tiny_bert, paper_cluster(), 64, cache_dir)
        _, ctx2 = plan_with_ctx(
            tiny_bert, paper_cluster(num_nodes=2), 64, cache_dir
        )
        assert cache_path(ctx1) != cache_path(ctx2)
        assert ctx2.events.find("cache_load").detail["hit"] is False
        assert ctx2.events.find("stage_search").status == "ok"

    def test_changed_planner_config_replans(self, tiny_bert, cache_dir):
        cluster = paper_cluster()
        _, ctx1 = plan_with_ctx(tiny_bert, cluster, 64, cache_dir)
        _, ctx2 = plan_with_ctx(
            tiny_bert, cluster, 64, cache_dir, num_blocks=16
        )
        assert cache_path(ctx1) != cache_path(ctx2)
        assert ctx2.events.find("cache_load").detail["hit"] is False
        assert ctx2.events.find("stage_search").status == "ok"

    def test_no_cache_dir_disables_both_passes(self, tiny_bert):
        cluster = paper_cluster()
        ctx = PlanningContext(
            tiny_bert, cluster, PlannerConfig(batch_size=64)
        )
        auto_partition(tiny_bert, cluster, 64, context=ctx)
        assert ctx.events.find("cache_load").status == "skipped"
        assert ctx.events.find("cache_store").status == "skipped"
