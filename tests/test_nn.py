"""Tests for the PyTorch-style nn frontend."""

import numpy as np
import pytest

from repro import nn
from repro.graph.ir import DataType
from repro.graph.validate import validate_graph
from repro.hardware import tiny_cluster
from repro.partitioner import auto_partition
from repro.runtime import Executor


class MLP(nn.Module):
    def __init__(self, din=16, dh=32, dout=4):
        super().__init__()
        self.fc1 = nn.Linear(din, dh)
        self.act = nn.ReLU()
        self.fc2 = nn.Linear(dh, dout)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestTrace:
    def test_basic_trace(self):
        g = nn.trace(
            MLP(), {"x": nn.Input((1, 16))},
            loss="cross_entropy",
            targets=nn.Input((1,), dtype=DataType.INT64),
        )
        validate_graph(g)
        assert "fc1.weight" in g.values
        assert g.values["fc1.weight"].shape == (32, 16)
        assert "fc2.bias" in g.values
        assert g.output_names == ["loss.out"]

    def test_trace_without_loss(self):
        g = nn.trace(MLP(), {"x": nn.Input((1, 16))}, loss=None)
        validate_graph(g)
        assert g.outputs[0].shape == (1, 4)

    def test_loss_requires_targets(self):
        with pytest.raises(ValueError, match="targets"):
            nn.trace(MLP(), {"x": nn.Input((1, 16))}, loss="mse_loss")

    def test_call_outside_trace_rejected(self):
        with pytest.raises(RuntimeError, match="trace"):
            MLP()(None)

    def test_nested_scopes(self):
        class Outer(nn.Module):
            def __init__(self):
                super().__init__()
                self.block = MLP()
                self.head = nn.Linear(4, 2)

            def forward(self, x):
                return self.head(self.block(x))

        g = nn.trace(Outer(), {"x": nn.Input((1, 16))}, loss=None)
        assert "block.fc1.weight" in g.values
        assert "head.weight" in g.values

    def test_sequential(self):
        model = nn.Sequential(
            nn.Linear(8, 16), nn.GELU(), nn.Dropout(0.1), nn.Linear(16, 4),
        )
        g = nn.trace(model, {"x": nn.Input((1, 8))}, loss=None)
        validate_graph(g)
        assert "layers.0.weight" in g.values
        assert "layers.3.weight" in g.values

    def test_conv_stack(self):
        class ConvNet(nn.Module):
            def __init__(self):
                super().__init__()
                self.conv = nn.Conv2d(3, 8, 3, stride=1, padding=1)
                self.bn = nn.BatchNorm2d(8)
                self.act = nn.ReLU()
                self.pool = nn.MaxPool2d(2)
                self.flat = nn.Flatten()
                self.fc = nn.Linear(8 * 8 * 8, 10)

            def forward(self, x):
                return self.fc(self.flat(self.pool(self.act(self.bn(self.conv(x))))))

        g = nn.trace(
            ConvNet(), {"x": nn.Input((1, 3, 16, 16))},
            loss="cross_entropy", targets=nn.Input((1,), dtype=DataType.INT64),
        )
        validate_graph(g)
        assert g.values["conv.weight"].shape == (8, 3, 3, 3)

    def test_functional_helpers(self):
        class Residual(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(8, 8)
                self.ln = nn.LayerNorm(8)

            def forward(self, x):
                return self.ln(nn.add(x, self.fc(x)))

        g = nn.trace(Residual(), {"x": nn.Input((1, 8))}, loss=None)
        validate_graph(g)
        assert any(t.op_type == "add" for t in g.tasks.values())

    def test_embedding(self):
        class Embedder(nn.Module):
            def __init__(self):
                super().__init__()
                self.emb = nn.Embedding(100, 16)
                self.fc = nn.Linear(16, 4)

            def forward(self, ids):
                return self.fc(self.emb(ids))

        g = nn.trace(
            Embedder(), {"ids": nn.Input((1, 6), dtype=DataType.INT64)},
            loss=None,
        )
        assert g.values["emb.weight"].shape == (100, 16)


class TestEndToEnd:
    def test_traced_model_is_partitionable(self):
        g = nn.trace(
            nn.Sequential(*[
                layer
                for i in range(4)
                for layer in (nn.Linear(64, 64), nn.ReLU())
            ]),
            {"x": nn.Input((1, 64))},
            loss="mse_loss", targets=nn.Input((1, 64)),
        )
        cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                               memory_bytes=1024**3)
        plan = auto_partition(g, cluster, batch_size=16)
        assert plan.throughput > 0

    def test_traced_model_is_executable(self, rng):
        g = nn.trace(
            MLP(), {"x": nn.Input((1, 16))},
            loss="cross_entropy",
            targets=nn.Input((1,), dtype=DataType.INT64),
        )
        ex = Executor(g)
        batch = {"x": rng.standard_normal((4, 16)),
                 "targets": rng.integers(0, 4, (4,))}
        loss, grads = ex.loss_and_grads(batch)
        assert np.isfinite(loss)
        assert "fc1.weight" in grads
