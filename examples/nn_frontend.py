#!/usr/bin/env python
"""PyTorch-style model definition -> automatic partitioning -> training.

RaNNC's promise is taking an UNMODIFIED model description.  This example
writes a model the way one writes ``torch.nn`` code, traces it (no
annotations anywhere), partitions it automatically, executes the
partitioned plan on the NumPy runtime, and shows the loss matches
single-device training exactly.

Run:  python examples/nn_frontend.py
"""

import numpy as np

from repro import nn
from repro.graph.ir import DataType
from repro.hardware import tiny_cluster
from repro.partitioner import auto_partition
from repro.runtime import Adam, Executor, PartitionedExecutor, init_parameters


class Residual(nn.Module):
    def __init__(self, dim: int):
        super().__init__()
        self.fc = nn.Linear(dim, dim)
        self.act = nn.GELU()
        self.ln = nn.LayerNorm(dim)

    def forward(self, x):
        return self.ln(nn.add(x, self.act(self.fc(x))))


class Net(nn.Module):
    def __init__(self, dim: int = 128, depth: int = 6, classes: int = 10):
        super().__init__()
        self.stem = nn.Linear(64, dim)
        self.blocks = [Residual(dim) for _ in range(depth)]
        self.head = nn.Linear(dim, classes)

    def forward(self, x):
        h = self.stem(x)
        for block in self.blocks:
            h = block(h)
        return self.head(h)


def main() -> None:
    # 1. trace: model code in, partitionable graph out
    graph = nn.trace(
        Net(), {"x": nn.Input((1, 64))},
        loss="cross_entropy", targets=nn.Input((1,), dtype=DataType.INT64),
    )
    print(f"traced: {graph}")

    # 2. partition for a small simulated cluster
    cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                           memory_bytes=256 * 1024**2)
    plan = auto_partition(graph, cluster, batch_size=32)
    print(plan.summary())

    # 3. execute the plan and verify against single-device training
    rng = np.random.default_rng(0)
    params = init_parameters(graph, seed=0)
    whole = Executor(graph, params={k: v.copy() for k, v in params.items()})
    partitioned = PartitionedExecutor.from_plan(
        graph, plan, params={k: v.copy() for k, v in params.items()}
    )
    opt_w, opt_p = Adam(1e-3), Adam(1e-3)
    print(f"\n{'step':<6}{'single-device':>16}{'partitioned':>14}{'diff':>12}")
    for step in range(5):
        batch = {
            "x": rng.standard_normal((32, 64)),
            "targets": rng.integers(0, 10, (32,)),
        }
        lw, gw = whole.loss_and_grads(batch)
        opt_w.step(whole.params, gw)
        lp, gp = partitioned.loss_and_grads(batch)
        opt_p.step(partitioned.params, gp)
        print(f"{step:<6}{lw:>16.8f}{lp:>14.8f}{abs(lw - lp):>12.2e}")


if __name__ == "__main__":
    main()
