#!/usr/bin/env python
"""End-to-end observability: trace a plan, the simulated pipeline, and
real execution into one Perfetto file.

Walks the whole surface of ``repro.obs``:

1. plan a small BERT with ``PlannerConfig(trace=True)`` — the planner
   records pass spans, Algorithm-2 search-level spans, per-(S, MB)
   Algorithm-1 spans, and the ``dp.*`` / ``profiler.*`` metrics;
2. rebuild the iteration timeline of the winning plan (one track per
   pipeline stage, forward/backward colour-coded);
3. actually execute a forward/backward step of the graph on the NumPy
   runtime with an opt-in execution tracer (``exec.task`` span per
   kernel);
4. export everything — both tracers, the timeline, and the metrics —
   into a single ``trace.json`` to open at https://ui.perfetto.dev.

Run:  python examples/trace_pipeline.py [--out trace.json]

See docs/OBSERVABILITY.md for the span/metric naming scheme and a
walkthrough of the resulting trace.
"""

import argparse
import json

import numpy as np

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.obs import Tracer, chrome_trace, spans_to_trace_events
from repro.pipeline.timeline import plan_timeline, render_gantt
from repro.planner import PlannerConfig, PlanningContext, plan_graph
from repro.runtime import Executor


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="trace.json")
    args = ap.parse_args()

    # ------------------------------------------------------------------
    # 1. plan with tracing on
    graph = build_bert(BertConfig(hidden_size=128, num_layers=4,
                                  num_heads=4, seq_len=32, vocab_size=1000))
    cluster = paper_cluster(num_nodes=1)
    config = PlannerConfig(batch_size=64, trace=True)
    ctx = PlanningContext(graph, cluster, config)
    plan = plan_graph(graph, cluster, config, context=ctx)
    print(plan.summary())

    dp_spans = ctx.tracer.spans("partitioner.dp")
    snap = ctx.metrics.snapshot()
    print(f"\nplanner: {len(ctx.tracer)} spans "
          f"({len(dp_spans)} Algorithm-1 calls), "
          f"{snap['dp.states_evaluated']} DP states, "
          f"profiler memo hits {snap['profiler.memo_hits']:.0f}")

    # ------------------------------------------------------------------
    # 2. the simulated pipeline iteration as a timeline
    timeline = plan_timeline(plan)
    print(f"\nsimulated iteration ({timeline.num_stages} stages, "
          f"{timeline.num_microbatches} microbatches, "
          f"bubble {timeline.bubble_fraction() * 100:.1f}%):")
    print(render_gantt(timeline, width=64))

    # ------------------------------------------------------------------
    # 3. execute one real step with an execution tracer
    exec_tracer = Tracer()
    ex = Executor(graph, tracer=exec_tracer)
    rng = np.random.default_rng(0)
    batch_size = 2
    inputs = {
        "input_ids": rng.integers(0, 1000, (batch_size, 32)),
        "token_type_ids": rng.integers(0, 2, (batch_size, 32)),
        "attention_mask": np.zeros((batch_size, 1, 1, 32)),
        "mlm_labels": rng.integers(0, 1000, (batch_size, 32)),
        "nsp_labels": rng.integers(0, 2, (batch_size,)),
    }
    loss, grads = ex.loss_and_grads(inputs)
    tasks = [s for s in exec_tracer.spans() if s.name == "exec.task"]
    print(f"\nexecuted one step: loss={loss:.4f}, "
          f"{len(tasks)} kernel spans, {len(grads)} gradients")

    # ------------------------------------------------------------------
    # 4. one trace file with planner (pid 1), pipeline (pid 2) and
    #    runtime (pid 3) processes
    doc = chrome_trace(tracer=ctx.tracer, timeline=timeline,
                       metrics=ctx.metrics)
    doc["traceEvents"].extend(
        spans_to_trace_events(exec_tracer.spans(), pid=3,
                              process_name="runtime (numpy)")
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1)
    print(f"\n{len(doc['traceEvents'])} events -> {args.out}")
    print("open it at https://ui.perfetto.dev (or chrome://tracing)")


if __name__ == "__main__":
    main()
