#!/usr/bin/env python
"""Partitioning a custom architecture built with the GraphBuilder.

RaNNC's selling point is architecture-agnosticism: no per-model rewriting.
This example defines a non-standard network -- a two-tower model whose
towers are imbalanced (a wide MLP tower and a deep convolutional tower)
merging into a shared head -- and lets the partitioner figure it out.
The branch structure exercises the convexity machinery: a stage may never
contain both towers' fragments if a path leaves and re-enters it.

Run:  python examples/custom_model.py
"""

from repro.graph.builder import GraphBuilder
from repro.graph.ir import DataType
from repro.hardware import tiny_cluster
from repro.partitioner import auto_partition


def build_two_tower(num_classes: int = 50):
    b = GraphBuilder("two_tower")

    # tower 1: wide MLP over tabular features
    feats = b.input("features", (1, 2048))
    t1 = feats
    for i in range(4):
        t1 = b.linear(t1, 2048, name=f"mlp{i}")
        t1 = b.op("relu", [t1], name=f"mlp{i}.act")
    t1 = b.linear(t1, 256, name="mlp_out")

    # tower 2: deep conv stack over images
    images = b.input("images", (1, 3, 64, 64))
    t2 = images
    channels = 32
    for i in range(6):
        stride = 2 if i % 2 == 0 else 1
        t2 = b.conv2d(t2, channels, kernel=3, stride=stride, padding=1,
                      name=f"conv{i}")
        t2 = b.batchnorm2d(t2, name=f"bn{i}")
        t2 = b.op("relu", [t2], name=f"conv{i}.act")
        channels *= 2 if i % 2 == 1 else 1
    t2 = b.op("global_avgpool", [t2], name="pool")
    t2 = b.linear(t2, 256, name="conv_out")

    # fusion head
    merged = b.op("concat", [t1, t2], {"axis": 1}, name="fuse")
    h = b.linear(merged, 512, name="head.fc1")
    h = b.op("gelu", [h], name="head.act")
    logits = b.linear(h, num_classes, name="head.fc2")
    labels = b.input("labels", (1,), DataType.INT64)
    loss = b.op("cross_entropy", [logits, labels], name="loss")
    return b.finish([loss])


def main() -> None:
    model = build_two_tower()
    print(f"model: {model}")

    cluster = tiny_cluster(num_nodes=2, devices_per_node=4,
                           memory_bytes=1 * 1024**3)
    plan = auto_partition(model, cluster, batch_size=64, num_blocks=16)
    print(plan.summary())

    # every stage is a convex subgraph: print which towers it touches
    for stage in plan.stages:
        towers = set()
        for t in stage.tasks:
            if t.startswith(("mlp",)):
                towers.add("mlp")
            elif t.startswith(("conv", "bn", "pool")):
                towers.add("conv")
            elif t.startswith(("head", "fuse", "loss")):
                towers.add("head")
        print(f"stage {stage.index}: touches {sorted(towers)}")


if __name__ == "__main__":
    main()
