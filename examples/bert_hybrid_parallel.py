#!/usr/bin/env python
"""Enlarged-BERT hybrid parallelism: the paper's Fig. 4 workload.

Partitions BERT models of increasing size on the paper's 4-node x 8-V100
cluster and compares RaNNC's automatic plan against every baseline
framework.  The smallest model degenerates to pure data parallelism
(S = 1); larger ones get deeper pipelines; the largest models are only
trainable by graph partitioning.

Run:  python examples/bert_hybrid_parallel.py          (a few minutes)
      python examples/bert_hybrid_parallel.py --fast   (two models)
"""

import argparse

from repro.baselines import (
    run_data_parallel,
    run_gpipe_hybrid,
    run_megatron,
    run_pipedream_2bw,
)
from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import PartitioningError, auto_partition
from repro.profiler import GraphProfiler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="run only two model sizes")
    parser.add_argument("--batch-size", type=int, default=256)
    args = parser.parse_args()

    cluster = paper_cluster()
    sizes = [(1024, 24), (1536, 96), (2048, 192)]
    if args.fast:
        sizes = sizes[:2]

    for hidden, layers in sizes:
        cfg = BertConfig(hidden_size=hidden, num_layers=layers)
        graph = build_bert(cfg)
        profiler = GraphProfiler(graph, cluster)
        print(f"\n=== {cfg.name}: {graph.num_parameters() / 1e9:.2f}B params ===")

        for name, runner in [
            ("data parallel", lambda: run_data_parallel(
                graph, cluster, args.batch_size, profiler=profiler)),
            ("Megatron-LM  ", lambda: run_megatron(
                graph, cfg, cluster, args.batch_size, profiler=profiler)),
            ("GPipe-Hybrid ", lambda: run_gpipe_hybrid(
                graph, cluster, args.batch_size, profiler=profiler)),
            ("PipeDream-2BW", lambda: run_pipedream_2bw(
                graph, cluster, args.batch_size, profiler=profiler)),
        ]:
            result = runner()
            if result.feasible:
                print(f"{name}: {result.throughput:8.1f} samples/s  {result.config}")
            else:
                print(f"{name}: OOM ({result.reason})")

        try:
            plan = auto_partition(graph, cluster, args.batch_size,
                                  profiler=profiler)
            print(f"RaNNC        : {plan.throughput:8.1f} samples/s  "
                  f"S={plan.num_stages} MB={plan.num_microbatches} "
                  f"R={plan.replica_factor} "
                  f"devices/stage={[s.devices_per_pipeline for s in plan.stages]}")
            print(plan.summary())
        except PartitioningError as exc:
            print(f"RaNNC        : INFEASIBLE ({exc})")


if __name__ == "__main__":
    main()
