#!/usr/bin/env python
"""Quickstart: automatically partition a model with one call.

Builds a plain MLP (no parallelism annotations anywhere), asks RaNNC to
partition it for a simulated 4-GPU node, and prints the resulting plan:
how many pipeline stages, how many replicas of each, which microbatch
count, and the estimated training throughput.

Run:  python examples/quickstart.py
"""

from repro.hardware import tiny_cluster
from repro.models import build_mlp
from repro.partitioner import auto_partition

def main() -> None:
    # 1. describe the model exactly as you would for single-device training
    model = build_mlp(widths=(512, 1024, 1024, 1024, 256, 10))
    print(f"model: {model}\n")

    # 2. describe the hardware (here: one node with four 2-GiB devices)
    cluster = tiny_cluster(num_nodes=1, devices_per_node=4,
                           memory_bytes=2 * 1024**3)

    # 3. one call: atomic partitioning -> block partitioning -> stage DP
    plan = auto_partition(model, cluster, batch_size=64)

    print(plan.summary())
    print()
    diag = plan.diagnostics
    print(f"atomic components : {diag.num_atomic_components}")
    print(f"blocks            : {diag.num_blocks}")
    print(f"DP invocations    : {diag.dp_calls}")
    print(f"pipeline time     : {diag.pipeline_time * 1e3:.2f} ms")
    print(f"allreduce time    : {diag.allreduce_time * 1e3:.2f} ms")

    # the device assignment shows where every stage replica runs
    assignment = plan.assignment
    for replica in range(plan.replica_factor):
        for stage in range(plan.num_stages):
            ranks = assignment.devices_of(replica, stage)
            print(f"pipeline {replica}, stage {stage} -> device ranks {ranks}")


if __name__ == "__main__":
    main()
