#!/usr/bin/env python
"""Enlarged-ResNet pipeline parallelism: the paper's Fig. 5 workload.

ResNet layers are strongly imbalanced (early layers see big spatial
extents, late ones many channels), which is where automatic balancing
shines: RaNNC's plan beats a manually balanced torchgpipe split by a wide
margin.  This example partitions BiT-style ResNet152x8 (3.7 B parameters)
on one 8-V100 node and renders the resulting pipeline schedule.

Run:  python examples/resnet_pipeline.py
"""

from repro.baselines import run_data_parallel, run_gpipe_model
from repro.hardware import single_node
from repro.models import ResNetConfig, build_resnet
from repro.partitioner import auto_partition
from repro.pipeline.schedule import render_schedule, sync_pipeline_schedule
from repro.profiler import GraphProfiler


def main() -> None:
    cluster = single_node()
    cfg = ResNetConfig(depth=152, width_factor=8)
    graph = build_resnet(cfg)
    profiler = GraphProfiler(graph, cluster)
    print(f"{cfg.name}: {graph.num_parameters() / 1e9:.2f}B params, "
          f"{len(graph.tasks)} tasks\n")

    dp = run_data_parallel(graph, cluster, 128, profiler=profiler)
    print(f"data parallel: "
          f"{'%.1f samples/s' % dp.throughput if dp.feasible else 'OOM -- ' + dp.reason}")

    gp = run_gpipe_model(graph, cluster, 128, profiler=profiler)
    print(f"GPipe-Model  : {gp.throughput:.1f} samples/s  {gp.config}")

    plan = auto_partition(graph, cluster, 128, profiler=profiler)
    print(f"RaNNC        : {plan.throughput:.1f} samples/s "
          f"({plan.throughput / gp.throughput:.1f}x GPipe-Model)\n")
    print(plan.summary())

    print("\npipeline schedule (unit-slot rendering, paper Fig. 1 style):")
    events = sync_pipeline_schedule(plan.num_stages,
                                    min(plan.num_microbatches, 8))
    print(render_schedule(events, plan.num_stages))

    print("\nreal-time Gantt of one iteration (per-stage profiled times):")
    from repro.pipeline.timeline import plan_timeline, render_gantt

    print(render_gantt(plan_timeline(plan)))


if __name__ == "__main__":
    main()
