#!/usr/bin/env python
"""Loss-validation demo: partitioned training == whole-graph training.

The paper validates RaNNC by pre-training BERT twice (RaNNC vs
Megatron-LM) and comparing final losses (difference < 1e-3).  This example
runs the laptop-scale analogue on the real NumPy runtime: a scaled-down
BERT trained whole-graph versus partitioned into two pipeline stages with
microbatching, activation checkpointing and gradient accumulation --
including the tied embedding whose gradient crosses the stage boundary.

Run:  python examples/numerical_equivalence.py
"""

from repro.experiments import run_loss_validation


def main() -> None:
    result = run_loss_validation(steps=10, batch_size=8, num_microbatches=2)
    print(f"stages={result.num_stages}  microbatches={result.num_microbatches}\n")
    print(f"{'step':<6}{'whole-graph':>14}{'partitioned':>14}{'|diff|':>12}")
    for i, (a, b) in enumerate(
        zip(result.reference_losses, result.partitioned_losses)
    ):
        print(f"{i:<6}{a:>14.8f}{b:>14.8f}{abs(a - b):>12.2e}")
    print(f"\nmax difference: {result.max_diff:.2e} "
          f"(paper tolerance: 1e-3 -> {'OK' if result.within_paper_tolerance else 'FAIL'})")


if __name__ == "__main__":
    main()
