"""Replanning-latency snapshot: cold vs cache hit vs delta replan.

Three ways to obtain a plan for BERT on the paper cluster after the
cluster grows from 2 to 4 nodes:

* **cold** — a fresh ``auto_partition`` run (full three-phase search);
* **cache_hit** — a warm whole-plan deployment cache (the legacy path:
  fingerprint lookup + JSON restore + re-verification);
* **delta** — :func:`repro.planner.replan` against the previous run's
  artifact store, which reuses the atomic partition, the coarsening and
  the profile tensors and reruns only the stage search onward.

The cache hit is the floor (nothing recomputed) and only exists when
*nothing* changed; the delta replan is the interesting number, because
it survives input changes.  CI enforces the PR budget: across the
benchmark suite the delta replans must cost at most 50 % of the cold
runs (the profiling and coarsening they skip are the point), or this
script exits non-zero.  Per-model ratios are reported alongside; note
that with this repo's *analytic* profiler the smallest model is
search-dominated (the DP over the new cluster's candidate space is
exact and cannot be reused), so its individual ratio sits near the
structural floor ``search / (search + coarsen + profile)`` -- on real
hardware, where profiling dwarfs the search, the gap widens.

Usage::

    PYTHONPATH=src python benchmarks/bench_replan.py --out BENCH_replan.json
"""

import argparse
import json
import shutil
import sys
import tempfile
import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.partitioner.deployment import plan_to_json
from repro.planner import (
    PlannerConfig,
    PlanningContext,
    ensure_store,
    plan_graph,
    replan,
)

#: total delta-replan time may cost at most this fraction of the total
#: cold time across the suite
DELTA_BUDGET = 0.50

MODELS = {
    "bert-base": (
        lambda: build_bert(
            BertConfig(hidden_size=768, num_layers=12, num_heads=12)
        ),
        256,
    ),
    "bert-large": (lambda: build_bert(BertConfig()), 256),
}


def bench_model(name, build, batch_size, rounds):
    graph = build()
    prev_cluster = paper_cluster(2)
    target_cluster = paper_cluster(4)
    config = PlannerConfig(batch_size=batch_size)

    # the previous run whose artifacts the delta replans reuse
    prev_ctx = PlanningContext(graph, prev_cluster, config)
    plan_graph(graph, prev_cluster, config, context=prev_ctx)

    cold_walls, cold_plan = [], None
    for _ in range(rounds):
        t0 = time.perf_counter()
        cold_plan = auto_partition(graph, target_cluster, batch_size)
        cold_walls.append(time.perf_counter() - t0)

    cache_dir = tempfile.mkdtemp(prefix="bench_replan_")
    try:
        auto_partition(
            graph, target_cluster, batch_size, cache_dir=cache_dir
        )
        hit_walls = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            hit = auto_partition(
                graph, target_cluster, batch_size, cache_dir=cache_dir
            )
            hit_walls.append(time.perf_counter() - t0)
        assert hit.diagnostics.cache_hit
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    delta_walls, reused = [], None
    for _ in range(rounds):
        # fresh store each round: otherwise round 2 would also reuse the
        # target cluster's search results and measure the no-change case.
        # Seeding is outside the timer -- it happens once per previous
        # run, not once per replan.
        prev_ctx.store = None
        ensure_store(prev_ctx)
        ctx = PlanningContext(graph, target_cluster, config)
        t0 = time.perf_counter()
        delta_plan = replan(prev_ctx, cluster=target_cluster, context=ctx)
        delta_walls.append(time.perf_counter() - t0)
        reused = [e.name for e in ctx.events if e.detail.get("reuse")]

    # reuse must not change the plan: bit-identical to the cold run
    assert plan_to_json(delta_plan, graph) == plan_to_json(cold_plan, graph)
    assert reused == ["atomic_partition", "coarsen", "profile_tensors"]

    return {
        "batch_size": batch_size,
        "cold_s": min(cold_walls),
        "cache_hit_s": min(hit_walls),
        "delta_s": min(delta_walls),
        "delta_over_cold": min(delta_walls) / min(cold_walls),
        "passes_reused": reused,
        "rounds": rounds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cold vs cache-hit vs delta-replan latency snapshot"
    )
    parser.add_argument("--out", default="BENCH_replan.json")
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)

    doc = {}
    total_cold = total_delta = 0.0
    for name, (build, batch_size) in MODELS.items():
        row = bench_model(name, build, batch_size, args.rounds)
        doc[name] = row
        total_cold += row["cold_s"]
        total_delta += row["delta_s"]
        print(
            f"{name:<12} cold={row['cold_s']:.3f}s "
            f"cache_hit={row['cache_hit_s']:.3f}s "
            f"delta={row['delta_s']:.3f}s "
            f"(delta/cold={row['delta_over_cold']:.1%})",
            file=sys.stderr,
        )

    ratio = total_delta / total_cold
    ok = ratio <= DELTA_BUDGET
    doc["budget"] = {
        "delta_over_cold_max": DELTA_BUDGET,
        "total_cold_s": total_cold,
        "total_delta_s": total_delta,
        "total_delta_over_cold": ratio,
    }
    print(
        f"suite        delta/cold={ratio:.1%} "
        f"(budget {DELTA_BUDGET:.0%}: {'OK' if ok else 'FAIL'})",
        file=sys.stderr,
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
