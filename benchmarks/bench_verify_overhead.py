"""Cost of plan-integrity verification.

``VerifyPass`` runs on every ``auto_partition`` by default (ISSUE
acceptance bar: <5% plan-time overhead on BERT-Large).  This bench
times the full planning pipeline with ``verify=True`` vs
``verify=False`` and reports the delta, best-of-N.

Run::

    PYTHONPATH=src python benchmarks/bench_verify_overhead.py
"""

import argparse
import json
import sys
import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.planner import PlannerConfig, PlanningContext, plan_graph


def best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def time_plan(graph, cluster, verify, rounds):
    def run():
        config = PlannerConfig(batch_size=256, verify=verify)
        ctx = PlanningContext(graph, cluster, config)
        plan_graph(graph, cluster, config, context=ctx)
        return ctx

    return best_of(run, rounds)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--budget-pct", type=float, default=5.0,
                    help="fail (exit 1) if overhead exceeds this")
    ap.add_argument("--out", default=None, help="write JSON snapshot here")
    args = ap.parse_args(argv)

    cluster = paper_cluster()
    graph = build_bert(BertConfig())  # BERT-Large, the Fig. 4 anchor

    off = time_plan(graph, cluster, verify=False, rounds=args.rounds)
    on = time_plan(graph, cluster, verify=True, rounds=args.rounds)
    overhead = (on - off) / off * 100.0

    print(f"auto_partition (BERT-Large, BS=256), best of {args.rounds}:")
    print(f"  verify=False : {off * 1e3:8.1f} ms")
    print(f"  verify=True  : {on * 1e3:8.1f} ms  ({overhead:+.1f}%)")
    ok = overhead <= args.budget_pct
    print(f"  budget {args.budget_pct:.1f}% : {'OK' if ok else 'EXCEEDED'}")

    if args.out:
        doc = {
            "workload": "bert-large-bs256",
            "rounds": args.rounds,
            "verify_off_s": off,
            "verify_on_s": on,
            "verify_overhead_pct": overhead,
            "budget_pct": args.budget_pct,
        }
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"snapshot -> {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
