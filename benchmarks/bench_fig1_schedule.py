"""Fig. 1 -- synchronous pipeline schedule (microbatch waves).

Regenerates the schedule grid of the figure and checks its structural
properties: makespan 2(MB + S - 1) slots, (S - 1)-slot fill/drain bubbles,
and the bubble fraction decreasing in the microbatch count.
"""

from repro.experiments import run_fig1


def test_fig1_schedule(once):
    result = once(run_fig1, 4, 8)
    print("\n" + result.rendered)
    assert result.makespan_slots == 2 * (8 + 4 - 1)
    assert abs(result.bubble_fraction - 3 / 11) < 1e-12
    # monotone bubble decay with more microbatches (the figure's point)
    series = result.bubble_series
    assert all(a >= b for a, b in zip(series, series[1:]))
    assert series[0] == 0.75  # MB=1: 3 of 4 slots idle per wave


def test_fig1_schedule_large(once):
    result = once(run_fig1, 8, 32)
    assert result.makespan_slots == 2 * (32 + 8 - 1)
    assert result.bubble_fraction < 0.2
