"""Serving-simulator snapshot: SLO attainment and inference plan cost.

Two gates, both enforced by CI:

* **SLO attainment** — the autoscaler's chosen replica count must
  actually meet the latency SLO it was asked for: for the reference
  load (gpt-tiny on v100x8, 50 req/s Poisson, 200 ms p99 SLO — the
  acceptance workload of `repro serve-sim`) the simulated p99 at the
  chosen count must be <= the SLO and `met_slo` true.  A second,
  heavier point (gpt-small at 100 req/s) keeps the batcher/router under
  a non-trivial queue.
* **Inference plan cost** — planning in ``mode="inference"`` prices a
  strict subset of the training search (no backward roofline, no
  gradient allreduce, no optimizer state), so it must not cost more
  wall-clock than the training-mode plan of the same model.  Gated on
  bert-base and bert-large, min-of-``--rounds`` wall times; because the
  DP search dominates both modes equally, the two times differ by a few
  percent at most and CI gates at 110 % so shared-runner timer noise
  cannot flake the job while a real regression (a mode branch adding
  work) still trips it.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --out BENCH_serving.json
"""

import argparse
import json
import sys
import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.planner import PlannerConfig, plan_graph
from repro.serving import run_serving_sim

#: inference-mode planning may cost at most this multiple of the
#: training-mode plan time (the contract is "never slower" -- the
#: search prices a strict subset of the work -- but the difference is
#: within timer noise, so CI leaves 10 % headroom)
PLAN_TIME_BUDGET = 1.10

#: serving workloads the autoscaler must satisfy: (model, cluster,
#: rps, slo_ms, duration_s)
SERVING_GRID = (
    ("gpt-tiny", "v100x8", 50.0, 200.0, 2.0),
    ("gpt-small", "v100x8", 100.0, 400.0, 2.0),
)

PLAN_MODELS = {
    "bert-base": lambda: build_bert(
        BertConfig(hidden_size=768, num_layers=12, num_heads=12)
    ),
    "bert-large": lambda: build_bert(BertConfig()),
}


def bench_serving_point(model, cluster, rps, slo_ms, duration_s):
    t0 = time.perf_counter()
    summary = run_serving_sim(
        model, cluster, rps=rps, slo_ms=slo_ms,
        duration_s=duration_s, seed=0,
    )
    wall = time.perf_counter() - t0
    return {
        "model": model,
        "cluster": cluster,
        "rps": rps,
        "slo_ms": slo_ms,
        "requests": summary["requests"],
        "replicas": summary["replicas"],
        "met_slo": summary["met_slo"],
        "p50_ms": summary["latency_ms"]["p50"],
        "p99_ms": summary["latency_ms"]["p99"],
        "throughput_rps": summary["throughput_rps"],
        "utilization": summary["utilization"],
        "sweep": summary["sweep"],
        "wall_s": wall,
    }


def bench_plan_time(build, rounds):
    graph = build()
    cluster = paper_cluster(4)
    walls = {}
    for mode in ("training", "inference"):
        config = PlannerConfig(batch_size=256, mode=mode, verify=False)
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            plan_graph(graph, cluster, config)
            times.append(time.perf_counter() - t0)
        walls[mode] = min(times)
    return {
        "training_s": walls["training"],
        "inference_s": walls["inference"],
        "inference_over_training": walls["inference"] / walls["training"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-simulator SLO + inference plan-time snapshot"
    )
    parser.add_argument("--out", default="BENCH_serving.json")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    ok = True
    doc = {"serving": {}, "plan_time": {}}

    for model, cluster, rps, slo_ms, duration_s in SERVING_GRID:
        row = bench_serving_point(model, cluster, rps, slo_ms, duration_s)
        doc["serving"][model] = row
        point_ok = row["met_slo"] and row["p99_ms"] <= slo_ms
        ok = ok and point_ok
        print(
            f"{model:<12} {cluster:<8} rps={rps:<6g} "
            f"replicas={row['replicas']} p50={row['p50_ms']:.2f}ms "
            f"p99={row['p99_ms']:.2f}ms "
            f"(SLO {slo_ms:g}ms: {'OK' if point_ok else 'FAIL'})",
            file=sys.stderr,
        )

    for name, build in PLAN_MODELS.items():
        row = bench_plan_time(build, args.rounds)
        doc["plan_time"][name] = row
        point_ok = row["inference_over_training"] <= PLAN_TIME_BUDGET
        ok = ok and point_ok
        print(
            f"{name:<12} plan training={row['training_s'] * 1000:.1f}ms "
            f"inference={row['inference_s'] * 1000:.1f}ms "
            f"(ratio={row['inference_over_training']:.1%}, "
            f"budget {PLAN_TIME_BUDGET:.0%}: "
            f"{'OK' if point_ok else 'FAIL'})",
            file=sys.stderr,
        )

    doc["budget"] = {
        "plan_time_budget": PLAN_TIME_BUDGET,
        "ok": ok,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
