"""Sensitivity of the chosen plan to hardware parameters (extension).

Checks that the partitioner reacts to the cluster the way the paper's
reasoning predicts: tighter device memory forces deeper pipelines; faster
interconnect never hurts throughput.
"""

from repro.experiments.sensitivity import (
    format_sensitivity,
    run_bandwidth_sensitivity,
    run_memory_sensitivity,
)


def test_memory_sensitivity(once):
    rows = once(run_memory_sensitivity, (8, 16, 32, 64))
    print("\n" + format_sensitivity(rows, "device memory sweep (2.8B BERT)"))
    feasible = [r for r in rows if r.feasible]
    assert feasible, "at least the largest memory must be feasible"
    # deeper pipelines when memory shrinks: stages nonincreasing in memory
    stages = [r.num_stages for r in feasible]
    assert all(a >= b for a, b in zip(stages, stages[1:]))
    # more memory never reduces throughput materially
    thr = [r.throughput for r in feasible]
    assert thr[-1] >= thr[0] * 0.99


def test_bandwidth_sensitivity(once):
    rows = once(run_bandwidth_sensitivity, (5, 25, 100))
    print("\n" + format_sensitivity(rows, "interconnect bandwidth sweep"))
    assert all(r.feasible for r in rows)
    thr = [r.throughput for r in rows]
    # faster links never hurt
    assert all(a <= b * 1.01 for a, b in zip(thr, thr[1:]))
