"""Ablation (DESIGN.md choice #1): the d_min pruning rule of Algorithm 1.

The paper: "we incrementally update the minimum number of accelerator
devices d_min ... this significantly reduces the search space".  Measures
DP states evaluated and wall time with and without the rule on a
memory-tight configuration, asserting identical solutions.
"""

import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.stage_dp import DPContext, form_stage_dp
from repro.profiler import GraphProfiler


def test_dmin_pruning(once):
    cluster = paper_cluster()
    # a memory-tight model so the DP actually hits memory dead ends
    graph = build_bert(BertConfig(hidden_size=2048, num_layers=144))
    profiler = GraphProfiler(graph, cluster)
    blocks = block_partition(
        graph, atomic_partition(graph), profiler, num_blocks=32
    )

    def run(pruning):
        ctx = DPContext(graph, blocks, profiler, 256)
        t0 = time.perf_counter()
        sols = [
            form_stage_dp(ctx, S, 8, 256, 4, 16, dmin_pruning=pruning)
            for S in range(1, 9)
        ]
        return sols, ctx.states_evaluated, time.perf_counter() - t0

    def both():
        return run(True), run(False)

    (sols_p, states_p, t_p), (sols_n, states_n, t_n) = once(both)
    print(
        f"\nwith d_min: {states_p} states {t_p:.2f}s | "
        f"without: {states_n} states {t_n:.2f}s"
    )
    # identical feasibility and objectives
    for a, b in zip(sols_p, sols_n):
        assert (a is None) == (b is None)
        if a is not None:
            assert abs(a.objective - b.objective) < 1e-12
    # pruning must cut the evaluated state count
    assert states_p < states_n
