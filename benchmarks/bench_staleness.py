"""Extension: measure the parameter-staleness argument of Sec. II-B.

Asserts the qualitative law the paper stakes its design on: at every
learning rate, training quality degrades monotonically with staleness
depth, and at aggressive learning rates async training blows up while
synchronous training stays stable.
"""

from repro.experiments.staleness_demo import format_staleness, run_staleness_demo


def test_staleness_degradation(once):
    rows = once(run_staleness_demo)
    print("\n" + format_staleness(rows))

    for row in rows:
        tails = row.tail_by_delay()
        # staleness never helps: delay 0 is the best (or ties)
        best = min(tails.values())
        assert tails[0] <= best + 1e-9
        # degradation is monotone in delay at this fixed data stream
        ordered = [tails[d] for d in sorted(tails)]
        assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))

    # at the aggressive learning rate the gap is catastrophic (>5x),
    # while the synchronous run remains at the same scale as smaller lrs
    aggressive = rows[-1].tail_by_delay()
    assert aggressive[max(aggressive)] > 5 * aggressive[0]
    assert aggressive[0] < 2 * rows[0].tail_by_delay()[0]
