"""Fig. 4 -- enlarged-BERT pre-training throughput (the headline result).

Regenerates the sweep rows (data parallelism, Megatron-LM, GPipe-Hybrid,
PipeDream-2BW, RaNNC over the hidden-size x layer-count grid, FP32 and
AMP) and asserts the paper's claims hold in shape:

* RaNNC trains every model in the grid;
* the largest RaNNC-trainable model is several times larger than the
  largest Megatron-trainable one (paper: 5x at the full grid);
* data parallelism dies first;
* RaNNC is competitive with GPipe-Hybrid everywhere and clearly better
  on the small models (where it degenerates to pure data parallelism);
* PipeDream-2BW is within a small factor of RaNNC (its asynchronous
  schedule has no flush bubble), the gap the paper calls "tolerable".

Pass ``--benchmark-only -s`` to see the regenerated tables.  The full
18-model grid runs via FIG4_FULL_GRID (minutes); the default fast grid
covers each regime.
"""

from repro.experiments import FIG4_FAST_GRID, run_fig4
from repro.experiments.fig4_bert import headline_claims
from repro.experiments.runner import format_rows
from repro.hardware import Precision


def _by(rows, fw):
    return {r.workload: r for r in rows if r.framework == fw}


def test_fig4_fp32(once):
    rows = once(run_fig4, FIG4_FAST_GRID, Precision.FP32)
    print("\n" + format_rows(rows, "Fig. 4 (FP32), samples/s"))
    claims = headline_claims(rows)
    assert claims["rannc_trains_all"], "RaNNC must train every model"
    assert claims["rannc_4x_larger_than_megatron"]
    assert claims["rannc_competitive_with_gpipe"]

    rannc = _by(rows, "rannc")
    dp = _by(rows, "data_parallel")
    gpipe = _by(rows, "gpipe_hybrid")
    twobw = _by(rows, "pipedream_2bw")
    # data parallelism dies first: it trains a strict subset
    assert sum(r.feasible for r in dp.values()) < sum(
        r.feasible for r in rannc.values()
    )
    # on the smallest model RaNNC (which may choose S=1, pure DP with
    # accumulation) clearly beats GPipe-Hybrid, which cannot run S=1
    small = "h1024/L24"
    assert rannc[small].throughput > 1.2 * gpipe[small].throughput
    # 2BW within a reasonable factor of RaNNC wherever both run
    for w, r in rannc.items():
        o = twobw.get(w)
        if o is not None and o.feasible and r.feasible:
            assert 0.5 < r.throughput / o.throughput < 2.0


def test_fig4_amp(once):
    rows = once(
        run_fig4, [(1024, 24), (1536, 96), (2048, 192)], Precision.AMP,
        256, None, ("data_parallel", "megatron_lm", "rannc"),
    )
    print("\n" + format_rows(rows, "Fig. 4 (AMP), samples/s"))
    rannc = _by(rows, "rannc")
    assert all(r.feasible for r in rannc.values())


def test_fig4_amp_speedup(once):
    """AMP should be materially faster than FP32 for the same model."""

    def both():
        fp32 = run_fig4([(1536, 96)], Precision.FP32, frameworks=("rannc",))
        amp = run_fig4([(1536, 96)], Precision.AMP, frameworks=("rannc",))
        return fp32[0], amp[0]

    fp32, amp = once(both)
    print(f"\nh1536/L96 RaNNC: fp32={fp32.throughput:.1f} amp={amp.throughput:.1f}")
    assert amp.throughput > 1.5 * fp32.throughput
