"""Planner scaling: plan time and peak RSS vs graph size, per DP engine.

The tentpole claim of the native-speed DP core: on a >10k-task graph
(``gpt3_like(depth=420)``, coarsened to an effective k = 282 blocks)
the banded engine -- optionally JIT-compiled and spread over a process
pool -- plans at least 4x faster than the pre-banded dense/rows path,
with peak RSS that grows with ``O(k * band)`` instead of the dense
``O(k^2 * D)`` profile tensors.

Every measurement runs in a fresh subprocess (``--single``) so
``resource.getrusage`` high-water marks are per-configuration, not
cumulative over the sweep.  Run directly to emit the machine-readable
snapshot CI archives::

    PYTHONPATH=src python benchmarks/bench_scale.py --out BENCH_scale.json

``--quick`` measures only the smallest size (smoke mode), ``--depths``
overrides the size ladder.  The emitted JSON records, per size and
engine configuration, wall times (total / stage search / coarsening),
peak RSS, and the speedup over the dense baseline.
"""

import argparse
import json
import os
import subprocess
import sys
import time

#: (gpt3_like depth, requested num_blocks): each decoder layer traces to
#: ~24 tasks, so depth=420 is a 10k-task graph.  The coarsener's balance
#: threshold can stop above the request (420 yields an effective k = 282,
#: reported as ``num_blocks_effective``), which is still far past
#: FULL_TENSOR_MAX_CELLS at D = 32 -- the regime where the dense rows
#: sweep and its O(k^2 D) profile slabs dominate while the banded
#: engine stays near-flat.
SIZES = {105: 128, 210: 256, 420: 768}

#: (label, dp_engine, search_backend).  "dense" is the pre-banded
#: engine (full slab when it fits, else the per-(s, b) row sweep) on the
#: thread backend -- exactly the PR-2 configuration.  "numba+process"
#: degrades gracefully to banded NumPy when numba is absent (the
#: ``kernel_jit`` field in the output records which one actually ran).
CONFIGS = [
    ("dense", "dense", "thread"),
    ("banded", "numpy", "thread"),
    ("numba+process", "numba", "process"),
]

BATCH_SIZE = 2048
NUM_NODES = 4  # v100x32


def run_single(depth: int, num_blocks: int, engine: str, backend: str) -> dict:
    """Plan once in-process and return the measurement (used via a
    subprocess so peak RSS is isolated per configuration)."""
    from repro.hardware.presets import paper_cluster
    from repro.models import gpt3_like
    from repro.obs import peak_rss_bytes
    from repro.partitioner._dp_kernels import kernel_available
    from repro.planner import PlannerConfig, PlanningContext, plan_graph

    graph = gpt3_like(depth=depth)
    cluster = paper_cluster(num_nodes=NUM_NODES)
    cfg = PlannerConfig(
        batch_size=BATCH_SIZE,
        num_blocks=num_blocks,
        verify=False,
        dp_engine=engine,
        search_backend=backend,
    )
    ctx = PlanningContext(graph, cluster, cfg)
    t0 = time.perf_counter()
    plan = plan_graph(graph, cluster, cfg, context=ctx)
    plan_s = time.perf_counter() - t0
    timings = ctx.events.timings()
    return {
        "depth": depth,
        "num_tasks": len(graph.tasks),
        "num_blocks": num_blocks,
        # The coarsener's balance threshold can stop above the request;
        # this is the k the DP actually ran at.
        "num_blocks_effective": plan.stages[-1].block_range[1],
        "engine": engine,
        "backend": backend,
        "plan_s": plan_s,
        "search_s": timings.get("stage_search"),
        "coarsen_s": timings.get("coarsen"),
        "peak_rss_bytes": peak_rss_bytes(),
        "num_stages": plan.num_stages,
        "dp_calls": int(plan.diagnostics.dp_calls),
        "states_evaluated": int(plan.diagnostics.states_evaluated),
        "kernel_jit": kernel_available(),
    }


def measure(depth, num_blocks, engine, backend, timeout=1800) -> dict:
    """Run one configuration in a fresh interpreter, return its JSON."""
    cmd = [
        sys.executable, os.path.abspath(__file__), "--single",
        str(depth), str(num_blocks), engine, backend,
    ]
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement failed ({engine}/{backend}, depth={depth}):\n"
            f"{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_sweep(depths, timeout=1800) -> dict:
    doc = {
        "cpu_count": os.cpu_count(),
        "batch_size": BATCH_SIZE,
        "num_nodes": NUM_NODES,
        "sizes": [],
    }
    for depth in depths:
        num_blocks = SIZES[depth]
        entry = {"depth": depth, "num_blocks": num_blocks, "engines": {}}
        for label, engine, backend in CONFIGS:
            m = measure(depth, num_blocks, engine, backend, timeout=timeout)
            entry["engines"][label] = m
            entry["num_tasks"] = m["num_tasks"]
            rss = m["peak_rss_bytes"]
            rss_mib = f"{rss / 2**20:7.1f}MiB" if rss else "      ?"
            print(
                f"depth={depth:<4} k={m['num_blocks_effective']:<4} {label:<14} "
                f"plan={m['plan_s']:7.2f}s search={m['search_s']:7.2f}s "
                f"rss={rss_mib} stages={m['num_stages']}",
                file=sys.stderr,
            )
        base = entry["engines"]["dense"]
        entry["speedup_vs_dense"] = {
            label: base["plan_s"] / entry["engines"][label]["plan_s"]
            for label, _, _ in CONFIGS
            if label != "dense"
        }
        entry["search_speedup_vs_dense"] = {
            label: base["search_s"] / entry["engines"][label]["search_s"]
            for label, _, _ in CONFIGS
            if label != "dense"
        }
        doc["sizes"].append(entry)
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="planner scaling snapshot: plan time + RSS vs size"
    )
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument(
        "--single", nargs=4, metavar=("DEPTH", "BLOCKS", "ENGINE", "BACKEND"),
        help="internal: measure one configuration and print JSON",
    )
    parser.add_argument(
        "--depths", type=int, nargs="+", default=sorted(SIZES),
        choices=sorted(SIZES),
        help="gpt3_like depths to sweep (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smallest size only (smoke mode)",
    )
    parser.add_argument(
        "--timeout", type=int, default=1800,
        help="per-measurement subprocess timeout in seconds",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless the largest size's numba+process plan-time "
        "speedup over dense reaches this factor",
    )
    args = parser.parse_args(argv)

    if args.single:
        depth, num_blocks = int(args.single[0]), int(args.single[1])
        result = run_single(depth, num_blocks, args.single[2], args.single[3])
        print(json.dumps(result))
        return 0

    depths = [min(SIZES)] if args.quick else sorted(args.depths)
    doc = run_sweep(depths, timeout=args.timeout)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}", file=sys.stderr)

    if args.min_speedup is not None:
        top = doc["sizes"][-1]
        got = top["speedup_vs_dense"]["numba+process"]
        if got < args.min_speedup:
            print(
                f"FAIL: numba+process speedup {got:.2f}x < "
                f"{args.min_speedup:.2f}x at depth={top['depth']}",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: numba+process speedup {got:.2f}x >= "
            f"{args.min_speedup:.2f}x at depth={top['depth']}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
