"""Table I -- feature matrix of model-partitioning systems.

Regenerates the table and verifies that the capabilities claimed for the
systems this repository implements match their code paths.
"""

from repro.baselines.base import TABLE1_ROWS
from repro.experiments import run_table1
from repro.experiments.table1_features import (
    format_table1,
    implemented_capabilities,
)


def test_table1(once):
    rows = once(run_table1)
    print("\n" + format_table1(rows))
    assert len(rows) == 13
    by_name = {r.name: r for r in rows}
    # RaNNC is the only row with every property (the paper's punchline)
    full = [
        r.name
        for r in rows
        if r.partitioning_style == "graph"
        and r.hybrid_parallelism
        and r.automatic
        and r.memory_estimation
        and r.staleness_free
    ]
    assert full == ["RaNNC"]
    # implemented frameworks agree with their Table-I rows
    for name, caps in implemented_capabilities().items():
        row = by_name[name if name != "GPipe" else "GPipe"]
        assert row.partitioning_style == caps["partitioning"]
        assert row.hybrid_parallelism == caps["hybrid"]
        assert row.automatic == caps["automatic"]
        assert row.memory_estimation == caps["memory_estimation"]
        assert row.staleness_free == caps["staleness_free"]
