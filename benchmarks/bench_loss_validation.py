"""Sec. IV-B loss validation -- partitioned training reaches the same loss.

The paper: after identical step counts, RaNNC and Megatron-LM losses agree
within 1e-3.  Here the partitioned NumPy runtime (real partitioner
boundaries, microbatching, checkpointing, gradient accumulation) must
match whole-graph training within the same tolerance -- and, being
deterministic, does so almost exactly.
"""

from repro.experiments import run_loss_validation


def test_loss_validation(once):
    result = once(run_loss_validation, 10)
    print(
        f"\nfinal ref={result.reference_losses[-1]:.6f} "
        f"part={result.partitioned_losses[-1]:.6f} "
        f"diff={result.final_diff:.2e} (paper tolerance 1e-3)"
    )
    assert result.within_paper_tolerance
    assert result.max_diff < 1.0e-6  # deterministic runtime: far tighter
    # losses actually decreased (training happened)
    assert result.reference_losses[-1] < result.reference_losses[0]
