"""Plan-service latency under a Poisson load (cold / warm / delta).

Starts a real ``PlanServer`` (HTTP over a loopback socket, shared
on-disk artifact store) and drives it the way a fleet of users would:

1. **cold baseline** — every (model x cluster) grid point of the
   bert-base / bert-large x v100x8/16/32 mix once, each against a
   *dedicated* fresh-store server, so the cold distribution is what a
   cache-less deployment would serve (a shared store would turn all
   but the first request per model into deltas);
2. **burst** — N identical concurrent requests on the main server's
   first cold key, so the coalescing path is exercised
   deterministically (one leader run, N-1 coalesced followers);
3. **poisson** — an open-loop arrival stream with exponential
   inter-arrival times (seeded, reproducible): each arrival picks a
   grid point uniformly and, with probability ``--delta-fraction``,
   perturbs a planner knob (memory budget or microbatch cap) -- a
   *delta* request that reruns only the stage search onward.
   First-seen grid points are themselves deltas (a cluster resize
   against the warm model family).

Responses self-classify (``meta.cache`` = cold/warm/delta,
``meta.coalesced``), so the report needs no clock heuristics.  Both
client wall time and the server's ``plan_ms`` (pipeline execution
alone) are reported; the delta/cold ratio is gated on ``plan_ms``
because wall time under an open-loop load includes queueing delay,
which on a single-core CI host says more about the arrival pattern
than about what replanning reuses.  CI budgets, any violation exits
non-zero:

* warm p50 <= 150 ms client wall (store reuse + verify + HTTP);
* delta p50 <= 50 % of cold p50 on ``plan_ms`` (the reused
  profiling/coarsening is the point -- same budget as
  ``bench_replan.py``);
* coalescing rate > 0 (the burst must actually coalesce);
* every served plan reports ``verified: true``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
"""

import argparse
import concurrent.futures
import json
import random
import shutil
import sys
import tempfile
import time

from repro.service import PlanServer, ServiceClient

WARM_P50_BUDGET_MS = 150.0
DELTA_OVER_COLD_BUDGET = 0.50

#: the request mix: (label, model object, cluster object)
GRID = [
    (f"{model}@{cluster}", {"preset": model}, {"preset": cluster})
    for model in ("bert-base", "bert-large")
    for cluster in ("v100x8", "v100x16", "v100x32")
]
BATCH_SIZE = 256

#: knob perturbations the delta arrivals cycle through; each value
#: first seen per grid point is a delta (stage search reruns),
#: repeats are warm
DELTA_OPTIONS = (
    {"memory_budget_gb": 28.0},
    {"max_microbatches": 24},
    {"max_microbatches": 16},
    {"max_microbatches": 8},
)


def percentile(values, q):
    """Nearest-rank percentile of a non-empty list (q in [0, 100])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def one_request(port, model, cluster, options=None):
    """One plan request on its own connection; returns (meta, wall_ms)."""
    client = ServiceClient(port=port)
    try:
        params = {"model": model, "cluster": cluster,
                  "batch_size": BATCH_SIZE}
        if options:
            params["options"] = options
        t0 = time.perf_counter()
        result = client.plan(**params)
        wall_ms = (time.perf_counter() - t0) * 1e3
        return result["meta"], wall_ms
    finally:
        client.close()


def run_cold_baseline(workers):
    """One request per grid point, each on a dedicated fresh server."""
    samples = []
    for label, model, cluster in GRID:
        cache_dir = tempfile.mkdtemp(prefix="bench_service_cold_")
        server = PlanServer(workers=workers,
                            cache_dir=cache_dir).start_in_thread()
        try:
            meta, wall_ms = one_request(server.port, model, cluster)
            samples.append((meta, wall_ms))
            print(f"cold baseline: {label:24s} {meta['cache']:5s} "
                  f"{wall_ms:8.1f} ms")
        finally:
            server.stop()
            shutil.rmtree(cache_dir, ignore_errors=True)
    return samples


def run_burst(port, size):
    """``size`` identical concurrent requests on a cold key."""
    model, cluster = GRID[0][1], GRID[0][2]
    with concurrent.futures.ThreadPoolExecutor(size) as pool:
        futures = [pool.submit(one_request, port, model, cluster)
                   for _ in range(size)]
        return [f.result() for f in futures]


def run_poisson(port, rng, rate_hz, n_requests, delta_fraction, workers=8):
    """Open-loop Poisson arrivals; returns the (meta, wall_ms) list."""
    samples = []
    with concurrent.futures.ThreadPoolExecutor(workers) as pool:
        futures = []
        next_arrival = time.perf_counter()
        for _ in range(n_requests):
            next_arrival += rng.expovariate(rate_hz)
            delay = next_arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            _label, model, cluster = rng.choice(GRID)
            options = None
            if rng.random() < delta_fraction:
                options = rng.choice(DELTA_OPTIONS)
            futures.append(
                pool.submit(one_request, port, model, cluster, options)
            )
        samples = [f.result() for f in futures]
    return samples


def classify(samples):
    """Bucket (meta, wall_ms) samples by the server's own labels.

    Returns ``{class: {"wall": [...], "plan": [...]}}`` plus the count
    of unverified plans.  ``plan`` is the server-side pipeline time
    (the leader's, for coalesced followers).
    """
    byclass = {}
    unverified = 0
    for meta, wall_ms in samples:
        kind = "coalesced" if meta.get("coalesced") else meta["cache"]
        bucket = byclass.setdefault(kind, {"wall": [], "plan": []})
        bucket["wall"].append(wall_ms)
        bucket["plan"].append(meta["plan_ms"])
        if not meta.get("verified"):
            unverified += 1
    return byclass, unverified


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, help="write the JSON report here")
    ap.add_argument("--seed", type=int, default=20210517)
    ap.add_argument("--rate", type=float, default=6.0,
                    help="Poisson arrival rate (req/s)")
    ap.add_argument("--requests", type=int, default=48,
                    help="arrivals in the Poisson phase")
    ap.add_argument("--delta-fraction", type=float, default=0.3,
                    help="fraction of arrivals that perturb the memory "
                         "budget (delta requests)")
    ap.add_argument("--burst", type=int, default=6,
                    help="size of the deterministic coalescing burst")
    ap.add_argument("--workers", type=int, default=4,
                    help="server pipeline thread-pool size")
    args = ap.parse_args(argv)

    rng = random.Random(args.seed)
    cache_dir = tempfile.mkdtemp(prefix="bench_service_")
    server = PlanServer(
        workers=args.workers,
        cache_dir=cache_dir,
        cache_budget_bytes=256 * 2**20,
    ).start_in_thread()
    print(f"plan service on 127.0.0.1:{server.port} "
          f"(workers={args.workers}, cache={cache_dir})")

    try:
        t0 = time.perf_counter()
        samples = run_cold_baseline(args.workers)

        burst = run_burst(server.port, args.burst)
        samples += burst
        print(f"burst: {args.burst} identical concurrent requests, "
              f"{sum(1 for m, _ in burst if m.get('coalesced'))} coalesced")

        poisson = run_poisson(server.port, rng, args.rate, args.requests,
                              args.delta_fraction)
        samples += poisson
        elapsed = time.perf_counter() - t0

        byclass, unverified = classify(samples)
        coalesced_n = len(byclass.get("coalesced", {}).get("wall", []))
        rate = len(samples) / elapsed
        report = {
            "config": {
                "seed": args.seed,
                "rate_hz": args.rate,
                "requests": len(samples),
                "delta_fraction": args.delta_fraction,
                "burst": args.burst,
                "workers": args.workers,
                "grid": [label for label, _m, _c in GRID],
                "batch_size": BATCH_SIZE,
            },
            "achieved_rate_hz": rate,
            "coalescing_rate": coalesced_n / len(samples),
            "unverified_plans": unverified,
            "classes": {
                kind: {
                    "count": len(bucket["wall"]),
                    "p50_ms": percentile(bucket["wall"], 50),
                    "p99_ms": percentile(bucket["wall"], 99),
                    "mean_ms": sum(bucket["wall"]) / len(bucket["wall"]),
                    "plan_p50_ms": percentile(bucket["plan"], 50),
                    "plan_p99_ms": percentile(bucket["plan"], 99),
                }
                for kind, bucket in sorted(byclass.items())
            },
            "server_stats": ServiceClient(port=server.port).stats(),
        }
    finally:
        server.stop()
        shutil.rmtree(cache_dir, ignore_errors=True)

    print(f"\n{len(samples)} requests in {elapsed:.1f}s "
          f"({rate:.1f} req/s achieved)")
    for kind, stats in report["classes"].items():
        print(f"  {kind:10s} n={stats['count']:3d} "
              f"p50={stats['p50_ms']:8.1f}ms p99={stats['p99_ms']:8.1f}ms "
              f"plan_p50={stats['plan_p50_ms']:8.1f}ms")
    print(f"  coalescing rate: {report['coalescing_rate']:.1%}")

    failures = []
    warm = report["classes"].get("warm")
    cold = report["classes"].get("cold")
    delta = report["classes"].get("delta")
    if warm is None or cold is None:
        failures.append("stream produced no warm or no cold samples")
    if warm and warm["p50_ms"] > WARM_P50_BUDGET_MS:
        failures.append(
            f"warm p50 {warm['p50_ms']:.1f} ms exceeds the "
            f"{WARM_P50_BUDGET_MS:.0f} ms budget"
        )
    if delta and cold and (
        delta["plan_p50_ms"] > DELTA_OVER_COLD_BUDGET * cold["plan_p50_ms"]
    ):
        failures.append(
            f"delta plan p50 {delta['plan_p50_ms']:.1f} ms exceeds "
            f"{DELTA_OVER_COLD_BUDGET:.0%} of cold plan p50 "
            f"({cold['plan_p50_ms']:.1f} ms)"
        )
    if report["coalescing_rate"] <= 0:
        failures.append("coalescing rate is 0 (the burst never coalesced)")
    if unverified:
        failures.append(f"{unverified} served plan(s) not verified")
    report["budget_failures"] = failures

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.out}")

    if failures:
        for failure in failures:
            print(f"BUDGET FAIL: {failure}")
        return 1
    print("budgets OK (warm p50, delta/cold ratio, coalescing, verification)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
