"""Cost of the observability layer.

Two questions, answered with best-of-N wall times:

1. **Planner, tracing off** (the default): pass spans and ``dp.*``
   counters are always recorded — is ``auto_partition`` still within
   the ≤2% budget of the pre-instrumentation baseline?  (CI's ``bench``
   job tracks the absolute numbers via ``BENCH_partition.json``.)
2. **Planner, tracing on** (``PlannerConfig(trace=True)``): what do the
   fine-grained ``search.level`` / ``dp.form_stage_dp`` spans add?

Run::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

import argparse
import json
import sys
import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.planner import PlannerConfig, PlanningContext, plan_graph


def best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def time_plan(graph, cluster, trace, rounds):
    def run():
        config = PlannerConfig(batch_size=256, trace=trace)
        ctx = PlanningContext(graph, cluster, config)
        plan_graph(graph, cluster, config, context=ctx)
        return ctx

    return best_of(run, rounds)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--out", default=None, help="write JSON snapshot here")
    args = ap.parse_args(argv)

    cluster = paper_cluster()
    graph = build_bert(BertConfig())  # BERT-Large, the Fig. 4 anchor

    off = time_plan(graph, cluster, trace=False, rounds=args.rounds)
    on = time_plan(graph, cluster, trace=True, rounds=args.rounds)
    overhead = (on - off) / off * 100.0

    print(f"auto_partition (BERT-Large, BS=256), best of {args.rounds}:")
    print(f"  trace=False : {off * 1e3:8.1f} ms")
    print(f"  trace=True  : {on * 1e3:8.1f} ms  ({overhead:+.1f}%)")

    if args.out:
        doc = {
            "workload": "bert-large-bs256",
            "rounds": args.rounds,
            "trace_off_s": off,
            "trace_on_s": on,
            "trace_overhead_pct": overhead,
        }
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"snapshot -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
