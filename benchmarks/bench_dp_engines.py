"""Ablation (DESIGN.md choice #6): vectorized vs. reference DP engines.

The vectorized Algorithm-1 engine must match the pure-Python reference
transcription exactly (also property-tested in the unit suite) while
being substantially faster -- this benchmark quantifies the speedup on a
realistic 32-block instance.
"""

import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.stage_dp import (
    DPContext,
    form_stage_dp,
    reference_form_stage_dp,
)
from repro.profiler import GraphProfiler


def test_dp_engine_equivalence_and_speed(once):
    cluster = paper_cluster()
    graph = build_bert(BertConfig(hidden_size=1024, num_layers=48))
    profiler = GraphProfiler(graph, cluster)
    blocks = block_partition(
        graph, atomic_partition(graph), profiler, num_blocks=16
    )
    ctx = DPContext(graph, blocks, profiler, 256)

    def both():
        t0 = time.perf_counter()
        fast = form_stage_dp(ctx, 4, 8, 256, 4, 8)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref = reference_form_stage_dp(ctx, 4, 8, 256, 4, 8)
        t_ref = time.perf_counter() - t0
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = once(both)
    print(f"\nvectorized: {t_fast * 1e3:.1f} ms  reference: {t_ref * 1e3:.1f} ms")
    assert fast is not None and ref is not None
    assert abs(fast.objective - ref.objective) < 1e-12
    assert fast.boundaries == ref.boundaries
    assert fast.device_counts == ref.device_counts
