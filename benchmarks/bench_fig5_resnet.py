"""Fig. 5 -- enlarged-ResNet training throughput.

Regenerates both settings (1 node x 8 GPU, batch 128, with GPipe-Model;
4 nodes x 32 GPU, batch 512) and asserts the paper's claims:

* RaNNC and GPipe-Model train all models; data parallelism only the
  smallest;
* RaNNC outperforms GPipe-Model "by a large margin in all of the
  settings" (asserted as >= 1.3x here; the paper's figure shows 2-4x).
"""

from repro.experiments import run_fig5
from repro.experiments.runner import format_rows


def test_fig5(once):
    rows = once(run_fig5)
    print("\n" + format_rows(rows, "Fig. 5, samples/s"))
    by_fw = {}
    for r in rows:
        by_fw.setdefault(r.framework, {})[r.workload] = r

    rannc = by_fw["rannc"]
    gpipe = by_fw["gpipe_model"]
    dp = by_fw["data_parallel"]

    assert all(r.feasible for r in rannc.values())
    assert all(r.feasible for r in gpipe.values())
    # DP trains only the smallest model per setting
    for label in ("8gpu", "32gpu"):
        feas = [w for w, r in dp.items() if r.feasible and w.endswith(label)]
        assert feas == [f"resnet50x8/{label}"]
    # RaNNC beats GPipe-Model by a large margin everywhere it applies
    for w, r in gpipe.items():
        assert rannc[w].throughput > 1.3 * r.throughput, (
            w, rannc[w].throughput, r.throughput,
        )
