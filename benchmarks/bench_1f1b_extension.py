"""Extension: synchronous 1F1B (PipeDream-Flush) vs GPipe-flush memory.

Footnote 4 of the paper notes Megatron-LM later added pipeline
parallelism (it adopted PipeDream-Flush).  This bench runs RaNNC's own
plan for a large BERT under both flush-synchronous schedules and
measures: identical (or better) iteration time, but a several-fold
smaller activation-stash requirement on the early stages -- headroom the
stage-level DP could convert into fewer/larger stages.
"""

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.pipeline.one_f_one_b import compare_schedules


def test_1f1b_memory_headroom(once):
    cluster = paper_cluster()
    graph = build_bert(BertConfig(hidden_size=2048, num_layers=96))

    def run():
        plan = auto_partition(graph, cluster, 256)
        tf = [s.time_fwd for s in plan.stages]
        tb = [s.time_bwd for s in plan.stages]
        return plan, compare_schedules(tf, tb, plan.num_microbatches)

    plan, (gpipe_t, obo_t, gpipe_stash, obo_stash) = once(run)
    print(
        f"\nstages={plan.num_stages} MB={plan.num_microbatches}: "
        f"gpipe {gpipe_t * 1e3:.0f} ms vs 1f1b {obo_t * 1e3:.0f} ms; "
        f"stash {max(gpipe_stash)} -> {max(obo_stash)} microbatches"
    )
    # same dependency structure: 1F1B is not slower (small slack)
    assert obo_t <= gpipe_t * 1.05
    # and needs far fewer in-flight stashes when MB >> S
    if plan.num_microbatches > plan.num_stages:
        assert max(obo_stash) <= plan.num_stages
        assert max(obo_stash) * 2 <= max(gpipe_stash)
