"""Ablation (DESIGN.md choice #3): the block count k.

The paper fixes k = 32 as "balancing the quality of model partitioning
results and the search space".  Sweeps k over {8, 16, 32, 64} on a
medium BERT, reporting throughput and search cost: quality saturates
while search cost grows with k.
"""

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.profiler import GraphProfiler


def test_block_count_sweep(once):
    cluster = paper_cluster()
    graph = build_bert(BertConfig(hidden_size=1536, num_layers=96))

    def sweep():
        rows = []
        for k in (8, 16, 32, 64):
            profiler = GraphProfiler(graph, cluster)
            plan = auto_partition(
                graph, cluster, 256, num_blocks=k, profiler=profiler
            )
            rows.append(
                (k, plan.throughput, plan.num_stages, profiler.profile_calls)
            )
        return rows

    rows = once(sweep)
    print("\nk   samples/s  stages  profile_calls")
    for k, thr, s, calls in rows:
        print(f"{k:<4}{thr:>9.2f}{s:>8}{calls:>14}")
    throughputs = {k: thr for k, thr, _, _ in rows}
    # k = 32 should be within a few percent of the best of the sweep
    assert throughputs[32] >= 0.9 * max(throughputs.values())
    # and much better than a crude k = 8 partition is allowed to be worse
    assert throughputs[32] >= throughputs[8] * 0.95
