"""Planning cost of the topology communication model vs. the flat one.

``comm_model="topology"`` routes every p2p/allreduce price through the
link-level network model (ISSUE acceptance bar: <=10% plan-time
overhead over the flat closed forms on BERT-Large / v100x32).  This
bench times full planning under both models, best-of-N, reports the
overhead against the budget, and records the predicted iteration-time
deltas -- the *reason* to pay the overhead: the topology model picks
real collective algorithms instead of one closed form.

Run::

    PYTHONPATH=src python benchmarks/bench_comm_models.py
"""

import argparse
import json
import sys
import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.planner import PlannerConfig, PlanningContext, plan_graph
from repro.planner.context import EVALUATED


def best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def plan_under(graph, cluster, comm_model):
    config = PlannerConfig(batch_size=256, verify=False,
                           comm_model=comm_model)
    ctx = PlanningContext(graph, cluster, config)
    plan_graph(graph, cluster, config, context=ctx)
    return ctx.require(EVALUATED)


def time_plan(graph, cluster, comm_model, rounds):
    return best_of(lambda: plan_under(graph, cluster, comm_model), rounds)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--budget-pct", type=float, default=10.0,
                    help="fail (exit 1) if plan-time overhead exceeds this")
    ap.add_argument("--out", default=None, help="write JSON snapshot here")
    args = ap.parse_args(argv)

    cluster = paper_cluster(4)  # v100x32, the Fig. 4 anchor
    graph = build_bert(BertConfig())  # BERT-Large

    flat_s = time_plan(graph, cluster, "flat", rounds=args.rounds)
    topo_s = time_plan(graph, cluster, "topology", rounds=args.rounds)
    overhead = (topo_s - flat_s) / flat_s * 100.0

    flat_plan = plan_under(graph, cluster, "flat")
    topo_plan = plan_under(graph, cluster, "topology")
    iter_delta_pct = (
        (topo_plan.iteration_time - flat_plan.iteration_time)
        / flat_plan.iteration_time * 100.0
    )

    print(f"auto_partition (BERT-Large, v100x32, BS=256), "
          f"best of {args.rounds}:")
    print(f"  comm_model=flat     : {flat_s * 1e3:8.1f} ms")
    print(f"  comm_model=topology : {topo_s * 1e3:8.1f} ms  "
          f"({overhead:+.1f}%)")
    ok = overhead <= args.budget_pct
    print(f"  budget {args.budget_pct:.1f}% : {'OK' if ok else 'EXCEEDED'}")
    print(f"  predicted iteration : flat {flat_plan.iteration_time * 1e3:.1f} ms, "
          f"topology {topo_plan.iteration_time * 1e3:.1f} ms "
          f"({iter_delta_pct:+.1f}%, "
          f"allreduce={topo_plan.diagnostics.allreduce_algorithm})")

    if args.out:
        doc = {
            "workload": "bert-large-v100x32-bs256",
            "rounds": args.rounds,
            "flat_plan_s": flat_s,
            "topology_plan_s": topo_s,
            "plan_overhead_pct": overhead,
            "budget_pct": args.budget_pct,
            "flat_iteration_s": flat_plan.iteration_time,
            "topology_iteration_s": topo_plan.iteration_time,
            "iteration_delta_pct": iter_delta_pct,
            "topology_allreduce_algorithm": (
                topo_plan.diagnostics.allreduce_algorithm
            ),
        }
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"snapshot -> {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
