"""Planning-path overhead: cold plan vs. deployment-cache hit.

The pass-based planner folds RaNNC's cached "deployments" into the
pipeline (``CachePass``); this benchmark records ``auto_partition`` wall
time for BERT-Base on the paper cluster with an empty cache (full
three-phase search) and with a warm cache (fingerprint lookup + JSON
restore + re-evaluation), so future PRs can track both paths.
"""

import shutil
import tempfile

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition


def _bert_base():
    return build_bert(BertConfig(hidden_size=768, num_layers=12,
                                 num_heads=12))


def test_plan_bert_base_cold(benchmark):
    """Full pipeline, no cache directory configured."""
    cluster = paper_cluster()
    graph = _bert_base()
    plan = benchmark.pedantic(
        lambda: auto_partition(graph, cluster, 256),
        rounds=3, iterations=1,
    )
    assert plan.throughput > 0
    assert not plan.diagnostics.cache_hit


def test_plan_bert_base_cache_hit(benchmark):
    """Warm deployment cache: the stage search must be skipped."""
    cluster = paper_cluster()
    graph = _bert_base()
    cache_dir = tempfile.mkdtemp(prefix="bench_planner_cache_")
    try:
        cold = auto_partition(graph, cluster, 256, cache_dir=cache_dir)
        plan = benchmark.pedantic(
            lambda: auto_partition(graph, cluster, 256, cache_dir=cache_dir),
            rounds=5, iterations=1,
        )
        assert plan.diagnostics.cache_hit
        assert plan.diagnostics.dp_calls == 0
        assert plan.throughput == cold.throughput
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
