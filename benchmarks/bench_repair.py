"""Repair-latency snapshot: in-place plan repair vs full delta replan.

When a running job loses a node (or is granted one), the scheduler has
two ways to get a valid plan for the new cluster:

* **replan** — :func:`repro.planner.replan` against the previous run's
  artifact store: reuses the atomic partition, coarsening and profile
  tensors but reruns the stage search from scratch on the new cluster;
* **repair** — :func:`repro.planner.repair`: keeps the deployed stage
  boundaries and device counts, recomputes the replica factor,
  re-optimizes the microbatch count, prices the parameter migrations
  with the max-min-fair transfer simulator, and re-verifies.

The repair skips the stage search entirely, so it should be a small
fraction of even a warm replan.  CI enforces that: across the suite
(bert-base and bert-large, node-loss and scale-up events on the paper
cluster) total repair latency must cost at most 60 % of total replan
latency, or this script exits non-zero.  Every repaired plan must also
re-verify with zero violations — a fast wrong plan fails the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_repair.py --out BENCH_repair.json
"""

import argparse
import json
import sys
import time

from repro.hardware import paper_cluster
from repro.models import BertConfig, build_bert
from repro.planner import (
    NodeLoss,
    PlannerConfig,
    PlanningContext,
    ScaleUp,
    ensure_store,
    plan_graph,
    repair,
    replan,
)
from repro.verify import check_plan

#: total repair time may cost at most this fraction of the total
#: delta-replan time across the suite
REPAIR_BUDGET = 0.60

MODELS = {
    "bert-base": (
        lambda: build_bert(
            BertConfig(hidden_size=768, num_layers=12, num_heads=12)
        ),
        256,
    ),
    "bert-large": (lambda: build_bert(BertConfig()), 256),
}

EVENTS = {
    "node_loss": lambda: NodeLoss(1),
    "scale_up": lambda: ScaleUp(1),
}


def bench_model(name, build, batch_size, rounds):
    graph = build()
    cluster = paper_cluster(4)
    config = PlannerConfig(batch_size=batch_size)

    # the deployed run both paths start from
    prev_ctx = PlanningContext(graph, cluster, config)
    plan_graph(graph, cluster, config, context=prev_ctx)

    rows = {}
    for event_name, make_event in EVENTS.items():
        event = make_event()
        target = event.apply(cluster)

        repair_walls, result = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = repair(prev_ctx, event)
            repair_walls.append(time.perf_counter() - t0)
        report = check_plan(result.plan, graph)
        assert report.ok and not report.violations, (
            f"{name}/{event_name}: repaired plan failed verification: "
            f"{report.violations[:3]}"
        )

        replan_walls = []
        for _ in range(rounds):
            # fresh store each round: otherwise round 2 would reuse the
            # target cluster's search results and measure the no-change
            # case.  Seeding is outside the timer -- it happens once per
            # previous run, not once per event.
            prev_ctx.store = None
            ensure_store(prev_ctx)
            ctx = PlanningContext(graph, target, config)
            t0 = time.perf_counter()
            replan(prev_ctx, cluster=target, context=ctx)
            replan_walls.append(time.perf_counter() - t0)

        rows[event_name] = {
            "repair_s": min(repair_walls),
            "replan_s": min(replan_walls),
            "repair_over_replan": min(repair_walls) / min(replan_walls),
            "used_full_replan": result.used_full_replan,
            "migrated_pairs": result.migrated_pairs,
            "migration_bytes": result.migration_bytes,
            "migration_time_s": result.migration_time,
            "verified": True,
        }
    return {"batch_size": batch_size, "rounds": rounds, "events": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repair vs full-replan latency snapshot"
    )
    parser.add_argument("--out", default="BENCH_repair.json")
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)

    doc = {}
    total_repair = total_replan = 0.0
    for name, (build, batch_size) in MODELS.items():
        row = bench_model(name, build, batch_size, args.rounds)
        doc[name] = row
        for event_name, ev in row["events"].items():
            total_repair += ev["repair_s"]
            total_replan += ev["replan_s"]
            print(
                f"{name:<12} {event_name:<10} "
                f"repair={ev['repair_s'] * 1000:.1f}ms "
                f"replan={ev['replan_s'] * 1000:.1f}ms "
                f"(repair/replan={ev['repair_over_replan']:.1%}, "
                f"migrated={ev['migrated_pairs']})",
                file=sys.stderr,
            )

    ratio = total_repair / total_replan
    ok = ratio <= REPAIR_BUDGET
    doc["budget"] = {
        "repair_over_replan_max": REPAIR_BUDGET,
        "total_repair_s": total_repair,
        "total_replan_s": total_replan,
        "total_repair_over_replan": ratio,
    }
    print(
        f"suite        repair/replan={ratio:.1%} "
        f"(budget {REPAIR_BUDGET:.0%}: {'OK' if ok else 'FAIL'})",
        file=sys.stderr,
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"snapshot written to {args.out}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
