"""Sec. IV-C -- effect of coarsening (ablation of block-level phase).

Regenerates the paper's ablation: skipping the coarsening phase and
estimating candidate stages by summing atomic-subcomponent profiles is
(1) ~a-third slower where it finishes (paper: 33 % at h1024/L48) and
(2) computationally intractable beyond ~48 layers (paper: >24 h).
"""

from repro.experiments import run_coarsening_ablation
from repro.experiments.coarsening_ablation import format_ablation


def test_coarsening_ablation(once):
    rows = once(run_coarsening_ablation, (24, 48, 96))
    print("\n" + format_ablation(rows))
    by_model = {r.model: r for r in rows}

    l24, l48, l96 = (
        by_model["h1024/L24"], by_model["h1024/L48"], by_model["h1024/L96"],
    )
    # finishes at 24 and 48 layers, materially slower (paper: 33 %)
    assert l24.ablated_finished and l48.ablated_finished
    assert l24.slowdown_pct > 15.0
    assert l48.slowdown_pct > 15.0
    # does not finish beyond 48 layers (search-space blow-up)
    assert not l96.ablated_finished
    assert l96.projected_states > 10 * max(
        l24.projected_states, l48.ablated_dp_states
    )
