"""Extension beyond the paper's grid: decoder-only (GPT) models.

The paper's conclusion announces evaluating "enormous models ... in
various applications" as future work; this bench sweeps the GPT-2 family
plus an enlarged ~7 B-parameter variant on the paper cluster, asserting
the same shape as Fig. 4: RaNNC trains everything, data parallelism dies
early, pipelines deepen with model size.
"""

from repro.experiments.gpt_extension import GPT_FAMILY, run_gpt_extension
from repro.experiments.runner import format_rows


def test_gpt_extension(once):
    rows = once(run_gpt_extension, GPT_FAMILY)
    print("\n" + format_rows(rows, "GPT family (FP32), samples/s"))
    by = {(r.framework, r.workload): r for r in rows}

    # RaNNC trains every member, including the 7B variant
    for name, *_ in GPT_FAMILY:
        assert by[("rannc", name)].feasible, name
    # data parallelism cannot train the enlarged model
    assert not by[("data_parallel", "gpt2-7b")].feasible
    # where DP runs, RaNNC matches or beats it (it may BE DP with S=1)
    for name, *_ in GPT_FAMILY:
        dp = by[("data_parallel", name)]
        if dp.feasible:
            assert by[("rannc", name)].throughput >= 0.99 * dp.throughput
    # the 7B model needs a real pipeline
    assert by[("rannc", "gpt2-7b")].detail["stages"] > 1
