"""Partitioning cost itself: time to auto-partition each paper model.

Not a paper figure, but the paper's practicality claim ("Rapid" Neural
Network Connector) rests on the search finishing quickly; this benchmark
records end-to-end auto_partition wall time per workload, using
pytest-benchmark's statistics on repeated runs for the smallest model.

Run directly to emit a machine-readable perf snapshot::

    PYTHONPATH=src python benchmarks/bench_partitioning_cost.py \
        --out BENCH_partition.json

The JSON records wall time, ``dp_calls`` and ``states_evaluated`` per
workload so CI can archive the partitioning-cost trajectory across
commits (see the ``bench`` job in ``.github/workflows/ci.yml``).
"""

import argparse
import json
import sys
import time

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, ResNetConfig, build_bert, build_resnet
from repro.partitioner import auto_partition


def test_partition_bert_large(benchmark):
    cluster = paper_cluster()
    graph = build_bert(BertConfig())

    plan = benchmark.pedantic(
        lambda: auto_partition(graph, cluster, 256),
        rounds=3, iterations=1,
    )
    assert plan.throughput > 0


@pytest.mark.parametrize(
    "hidden,layers", [(1536, 96), (2048, 192)], ids=["2.8B", "9.7B"]
)
def test_partition_large_bert(once, hidden, layers):
    cluster = paper_cluster()
    graph = build_bert(BertConfig(hidden_size=hidden, num_layers=layers))
    plan = once(auto_partition, graph, cluster, 256)
    assert plan.throughput > 0


def test_partition_resnet152x8(once):
    cluster = paper_cluster()
    graph = build_resnet(ResNetConfig(depth=152, width_factor=8))
    plan = once(auto_partition, graph, cluster, 512)
    assert plan.throughput > 0


# ----------------------------------------------------------------------
# standalone snapshot mode (CI artifact)

SMALL_WORKLOADS = {
    "bert_large": (lambda: build_bert(BertConfig()), 256),
    "resnet50x8": (
        lambda: build_resnet(ResNetConfig(depth=50, width_factor=8)), 512
    ),
}

FULL_WORKLOADS = {
    **SMALL_WORKLOADS,
    "bert_2.8B": (
        lambda: build_bert(BertConfig(hidden_size=1536, num_layers=96)), 256
    ),
    "bert_9.7B": (
        lambda: build_bert(BertConfig(hidden_size=2048, num_layers=192)), 256
    ),
    "resnet152x8": (
        lambda: build_resnet(ResNetConfig(depth=152, width_factor=8)), 512
    ),
}


def run_snapshot(workloads, rounds: int = 3) -> dict:
    """Partition every workload, keeping the best of ``rounds`` wall
    times (graph construction is excluded from the timed region)."""
    cluster = paper_cluster()
    doc = {}
    for name, (build, batch_size) in workloads.items():
        graph = build()
        walls = []
        plan = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            plan = auto_partition(graph, cluster, batch_size)
            walls.append(time.perf_counter() - t0)
        diag = plan.diagnostics
        doc[name] = {
            "wall_time_s": min(walls),
            "wall_times_s": walls,
            "batch_size": batch_size,
            "dp_calls": int(diag.dp_calls),
            "states_evaluated": int(diag.states_evaluated),
            "candidates_tried": int(diag.candidates_tried),
            "num_stages": plan.num_stages,
            "throughput": plan.throughput,
        }
        print(
            f"{name:<12} wall={min(walls):.3f}s dp_calls={doc[name]['dp_calls']} "
            f"states={doc[name]['states_evaluated']}",
            file=sys.stderr,
        )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="emit a partitioning-cost snapshot as JSON"
    )
    parser.add_argument("--out", default="BENCH_partition.json")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--full", action="store_true",
        help="include the multi-billion-parameter workloads (slow)",
    )
    parser.add_argument(
        "--budget-bert-large", type=float, default=None, metavar="SECONDS",
        help="fail when the best BERT-Large wall time exceeds this bound "
        "(the CI no-regression gate for the DP-engine work)",
    )
    args = parser.parse_args(argv)
    workloads = FULL_WORKLOADS if args.full else SMALL_WORKLOADS
    doc = run_snapshot(workloads, rounds=args.rounds)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}", file=sys.stderr)
    if args.budget_bert_large is not None:
        wall = doc["bert_large"]["wall_time_s"]
        if wall > args.budget_bert_large:
            print(
                f"FAIL: bert_large plan time {wall:.2f}s exceeds the "
                f"{args.budget_bert_large:.2f}s budget",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: bert_large plan time {wall:.2f}s within "
            f"{args.budget_bert_large:.2f}s budget",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
