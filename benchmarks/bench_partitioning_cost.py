"""Partitioning cost itself: time to auto-partition each paper model.

Not a paper figure, but the paper's practicality claim ("Rapid" Neural
Network Connector) rests on the search finishing quickly; this benchmark
records end-to-end auto_partition wall time per workload, using
pytest-benchmark's statistics on repeated runs for the smallest model.
"""

import pytest

from repro.hardware import paper_cluster
from repro.models import BertConfig, ResNetConfig, build_bert, build_resnet
from repro.partitioner import auto_partition


def test_partition_bert_large(benchmark):
    cluster = paper_cluster()
    graph = build_bert(BertConfig())

    plan = benchmark.pedantic(
        lambda: auto_partition(graph, cluster, 256),
        rounds=3, iterations=1,
    )
    assert plan.throughput > 0


@pytest.mark.parametrize(
    "hidden,layers", [(1536, 96), (2048, 192)], ids=["2.8B", "9.7B"]
)
def test_partition_large_bert(once, hidden, layers):
    cluster = paper_cluster()
    graph = build_bert(BertConfig(hidden_size=hidden, num_layers=layers))
    plan = once(auto_partition, graph, cluster, 256)
    assert plan.throughput > 0


def test_partition_resnet152x8(once):
    cluster = paper_cluster()
    graph = build_resnet(ResNetConfig(depth=152, width_factor=8))
    plan = once(auto_partition, graph, cluster, 512)
    assert plan.throughput > 0
