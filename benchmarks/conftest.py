"""Benchmark helpers: run expensive experiment harnesses exactly once per
benchmark (they regenerate whole paper figures) and echo the regenerated
tables so `pytest benchmarks/ --benchmark-only -s` shows the results."""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """benchmark.pedantic with a single round (experiments are minutes-
    scale; statistical repetition belongs to the micro-benchmarks)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
