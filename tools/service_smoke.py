#!/usr/bin/env python
"""Smoke-test a running plan service, used by the CI ``service`` job.

Exercises the daemon's whole contract end to end against a live
socket -- cold plan, warm repeat, delta replan through ``/v1/replan``,
verify round-trip of the served document, simulate, stats -- and exits
non-zero the moment any response disagrees with ``docs/SERVICE.md``.

Usage (the server must already be listening)::

    python -m repro serve --port 8321 &
    PYTHONPATH=src python tools/service_smoke.py --port 8321
"""

from __future__ import annotations

import argparse
import sys

REQUEST = {
    "model": {"preset": "bert-base"},
    "cluster": {"preset": "v100x8"},
    "batch_size": 256,
}


def check(condition: bool, label: str) -> bool:
    print(f"{'ok  ' if condition else 'FAIL'}  {label}")
    return condition


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8321)
    ap.add_argument("--timeout", type=float, default=60.0,
                    help="seconds to wait for the daemon to be healthy")
    args = ap.parse_args(argv)

    from repro.service import ServiceHTTPError, wait_until_healthy

    client = wait_until_healthy(args.host, args.port, timeout=args.timeout)
    ok = check(client.healthz()["status"] == "ok", "healthz answers")

    cold = client.plan(**REQUEST)
    ok &= check(cold["meta"]["cache"] == "cold", "first plan is cold")
    ok &= check(cold["meta"]["verified"] is True, "cold plan verified")
    ok &= check(bool(cold["plan"]["stages"]), "plan document has stages")

    warm = client.plan(**REQUEST)
    ok &= check(warm["meta"]["cache"] == "warm", "repeat is a warm hit")
    ok &= check(warm["plan"] == cold["plan"], "warm plan is byte-identical")

    delta = client.replan(**dict(REQUEST, cluster={"preset": "v100x16"}))
    ok &= check(delta["meta"]["cache"] == "delta", "replan after resize is delta")
    ok &= check(
        "profile_tensors" in delta["meta"]["reused_passes"],
        "delta reused the profile tensors",
    )

    try:
        client.replan(model={"preset": "bert-large"},
                      cluster={"preset": "v100x8"}, batch_size=64)
        ok &= check(False, "replan without a base returns 409 no_base")
    except ServiceHTTPError as exc:
        ok &= check(
            exc.http_status == 409 and exc.code == "no_base",
            "replan without a base returns 409 no_base",
        )

    verify = client.verify(plan=cold["plan"], model=REQUEST["model"],
                           cluster=REQUEST["cluster"],
                           batch_size=REQUEST["batch_size"])
    ok &= check(verify["verified"] is True, "served plan round-trip verifies")

    sim = client.simulate(**REQUEST)
    ok &= check(sim["timeline"]["makespan"] > 0, "simulate reports a timeline")

    stats = client.stats()
    ok &= check(stats["counters"]["service.requests"] >= 4, "stats count requests")
    ok &= check(stats["counters"]["service.verify_requests"] >= 1,
                "stats count verify requests")
    ok &= check("warm" in stats["latency_ms"], "stats report warm latency")

    broken = dict(cold["plan"])
    broken["stages"] = []
    try:
        client.verify(plan=broken, model=REQUEST["model"],
                      cluster=REQUEST["cluster"],
                      batch_size=REQUEST["batch_size"])
        ok &= check(False, "mutilated document fails verification")
    except ServiceHTTPError as exc:
        ok &= check(exc.http_status == 422,
                    "mutilated document fails verification")

    client.close()
    if not ok:
        print("SMOKE FAIL")
        return 1
    print("smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
