#!/usr/bin/env python
"""Documentation checks, run by the CI ``docs`` job.

Three checks:

1. **Intra-repo links** — every relative markdown link in the checked
   files must point at a file (or directory) that exists.  External
   links (``http(s)://``, ``mailto:``) and pure fragments (``#...``)
   are ignored; a trailing ``#fragment`` on a relative link is stripped
   before the existence check.
2. **Doctests** — fenced ```` ```python ```` blocks in the
   :data:`DOCTEST_DOCS` files are extracted *in order into one shared
   namespace per file* and executed with :mod:`doctest`, so the
   documented examples cannot rot.
3. **Config coverage** — every ``PlannerConfig`` field name must appear
   somewhere in the docs corpus, so a new planner knob cannot land
   undocumented.

Usage::

    python tools/check_docs.py            # from the repository root
    python tools/check_docs.py --verbose
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: files whose relative links must resolve (generated / scratch files
#: like ISSUE.md and SNIPPETS.md are deliberately out of scope)
LINKED_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ALGORITHMS.md",
    "docs/COMMUNICATION.md",
    "docs/HETEROGENEOUS.md",
    "docs/INCREMENTAL.md",
    "docs/INDEX.md",
    "docs/OBSERVABILITY.md",
    "docs/SCALING.md",
    "docs/SERVICE.md",
    "docs/SERVING_SIM.md",
    "docs/VERIFICATION.md",
    "examples/README.md",
)

#: files whose fenced python examples run as doctests
DOCTEST_DOCS = (
    "docs/OBSERVABILITY.md",
    "docs/COMMUNICATION.md",
    "docs/HETEROGENEOUS.md",
    "docs/INCREMENTAL.md",
    "docs/SCALING.md",
    "docs/SERVICE.md",
    "docs/SERVING_SIM.md",
)

#: files searched by the PlannerConfig coverage check
COVERAGE_DOCS = LINKED_DOCS

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_links(root: Path, rel_paths=LINKED_DOCS) -> List[str]:
    """Return one error string per broken relative link."""
    errors: List[str] = []
    for rel in rel_paths:
        md = root / rel
        if not md.exists():
            errors.append(f"{rel}: file listed in LINKED_DOCS is missing")
            continue
        for target in _LINK_RE.findall(md.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (md.parent / target_path).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def extract_python_blocks(text: str) -> List[str]:
    return [m.group(1) for m in _FENCE_RE.finditer(text)]


def run_doctests(
    root: Path, rel_paths=DOCTEST_DOCS, verbose: bool = False
) -> Tuple[int, int]:
    """Run fenced examples; returns (failures, attempts)."""
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(
        verbose=verbose, optionflags=doctest.ELLIPSIS
    )
    failures = attempts = 0
    for rel in rel_paths:
        md = root / rel
        blocks = extract_python_blocks(md.read_text())
        source = "\n".join(blocks)
        globs: dict = {}
        test = parser.get_doctest(source, globs, rel, str(md), 0)
        result = runner.run(test, clear_globs=False)
        failures += result.failed
        attempts += result.attempted
    return failures, attempts


def check_config_coverage(root: Path, rel_paths=COVERAGE_DOCS) -> List[str]:
    """One error per config field absent from the docs corpus.

    Covers every ``PlannerConfig``, ``ClusterSpec`` and ``DeviceClass``
    field: a field is covered when its exact name appears as a whole
    word in any of ``rel_paths`` — enough to guarantee a reader can
    grep the docs for the knob they are holding.
    """
    import dataclasses

    sys.path.insert(0, str(root / "src"))
    try:
        from repro.hardware.cluster import ClusterSpec, DeviceClass
        from repro.planner.context import PlannerConfig
    finally:
        sys.path.pop(0)

    corpus = "\n".join(
        (root / rel).read_text() for rel in rel_paths if (root / rel).exists()
    )
    errors: List[str] = []
    for cls in (PlannerConfig, ClusterSpec, DeviceClass):
        for field in dataclasses.fields(cls):
            if not re.search(rf"\b{re.escape(field.name)}\b", corpus):
                errors.append(
                    f"{cls.__name__}.{field.name}: not mentioned in any "
                    f"doc ({', '.join(rel_paths[:3])}, ...)"
                )
    return errors


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=REPO_ROOT)
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    rc = 0
    link_errors = check_links(args.root)
    if link_errors:
        rc = 1
        for err in link_errors:
            print(f"LINK FAIL  {err}")
    else:
        print(f"links OK ({len(LINKED_DOCS)} files checked)")

    failures, attempts = run_doctests(args.root, verbose=args.verbose)
    if failures:
        rc = 1
        print(f"doctest FAIL ({failures}/{attempts} examples failed)")
    elif attempts == 0:
        rc = 1
        print("doctest FAIL (no examples found — fence regex broken?)")
    else:
        print(f"doctests OK ({attempts} examples)")

    coverage_errors = check_config_coverage(args.root)
    if coverage_errors:
        rc = 1
        for err in coverage_errors:
            print(f"COVERAGE FAIL  {err}")
    else:
        print("PlannerConfig coverage OK (every field documented)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
